// Package contingency builds the 3^3-row frequency (contingency) tables
// that epistasis scoring consumes. For a SNP triple (X, Y, Z) the table
// counts, per phenotype class, how many samples carry each of the 27
// genotype combinations.
//
// The builders mirror the paper's approaches: BuildNaive is the
// Figure 1 pipeline (three stored planes, phenotype AND/ANDNOT at
// kernel time), BuildSplit is the V2+ pipeline (phenotype-split data,
// genotype-2 planes inferred by NOR), and the Accumulate* kernels are
// the word-range primitives the blocked (V3) and lane-vectorized (V4)
// engine paths drive.
package contingency

import (
	"fmt"
	"math/bits"

	"trigene/internal/bitvec"
	"trigene/internal/dataset"
)

// Cells is the number of genotype combinations for a SNP triple: 3^3.
const Cells = 27

// ComboIndex returns the table row for genotype combination
// (gx, gy, gz): gx*9 + gy*3 + gz.
func ComboIndex(gx, gy, gz int) int { return gx*9 + gy*3 + gz }

// Table is a 27-row, two-column frequency table. Counts[class][combo]
// is the number of samples of that phenotype class carrying the combo.
type Table struct {
	Counts [2][Cells]int32
}

// Cell returns the count for (class, gx, gy, gz).
func (t *Table) Cell(class, gx, gy, gz int) int32 {
	return t.Counts[class][ComboIndex(gx, gy, gz)]
}

// ClassTotal returns the sum of all 27 cells of a class. For a table
// built over a full dataset it equals the number of samples in the
// class.
func (t *Table) ClassTotal(class int) int {
	total := 0
	for _, c := range t.Counts[class] {
		total += int(c)
	}
	return total
}

// Validate checks the row sums against the expected class sizes and
// that no cell is negative.
func (t *Table) Validate(controls, cases int) error {
	for class, want := range [2]int{controls, cases} {
		for combo, c := range t.Counts[class] {
			if c < 0 {
				return fmt.Errorf("contingency: negative cell class=%d combo=%d: %d", class, combo, c)
			}
		}
		if got := t.ClassTotal(class); got != want {
			return fmt.Errorf("contingency: class %d total %d, want %d", class, got, want)
		}
	}
	return nil
}

// Equal reports whether two tables hold identical counts.
func (t *Table) Equal(o *Table) bool { return t.Counts == o.Counts }

// String renders the table for debugging.
func (t *Table) String() string {
	s := "combo  ctrl  case\n"
	for combo := 0; combo < Cells; combo++ {
		s += fmt.Sprintf("(%d%d%d)  %5d %5d\n", combo/9, combo/3%3, combo%3,
			t.Counts[dataset.Control][combo], t.Counts[dataset.Case][combo])
	}
	return s
}

// BuildNaive constructs the table with the paper's naive (V1) pipeline:
// all three genotype planes are stored, and each cell requires ANDing
// the three planes plus the (negated) phenotype before counting.
func BuildNaive(b *dataset.Binarized, i, j, k int) Table {
	var t Table
	phen := b.Phen.Words()
	for gx := 0; gx < 3; gx++ {
		x := b.Plane(i, gx)
		for gy := 0; gy < 3; gy++ {
			y := b.Plane(j, gy)
			for gz := 0; gz < 3; gz++ {
				z := b.Plane(k, gz)
				combo := ComboIndex(gx, gy, gz)
				t.Counts[dataset.Case][combo] = int32(bitvec.PopCountAnd3P(x, y, z, phen))
				t.Counts[dataset.Control][combo] = int32(bitvec.PopCountAnd3NotP(x, y, z, phen))
			}
		}
	}
	return t
}

// BuildSplit constructs the table with the phenotype-split pipeline
// (V2): only planes 0 and 1 are stored per class; plane 2 is derived
// word-by-word with NOR, and the known padding inflation of the (2,2,2)
// cell is subtracted afterwards.
func BuildSplit(s *dataset.Split, i, j, k int) Table {
	var t Table
	for class := 0; class < 2; class++ {
		AccumulateSplit(&t.Counts[class],
			s.Plane(class, i, 0), s.Plane(class, i, 1),
			s.Plane(class, j, 0), s.Plane(class, j, 1),
			s.Plane(class, k, 0), s.Plane(class, k, 1))
		t.Counts[class][Cells-1] -= int32(s.Pad[class])
	}
	return t
}

// AccumulateSplit adds, to the 27 accumulators, the genotype-combination
// counts contributed by the given word range of the six stored planes
// (x0, x1, y0, y1, z0, z1). Genotype-2 words are derived by NOR without
// tail masking: if the range covers a padded final word, the caller must
// subtract the padding from accumulator 26 afterwards.
func AccumulateSplit(ft *[Cells]int32, x0s, x1s, y0s, y1s, z0s, z1s []uint64) {
	n := len(x0s)
	if n == 0 {
		return
	}
	_ = x1s[n-1]
	_ = y0s[n-1]
	_ = y1s[n-1]
	_ = z0s[n-1]
	_ = z1s[n-1]
	for w := 0; w < n; w++ {
		x0, x1 := x0s[w], x1s[w]
		y0, y1 := y0s[w], y1s[w]
		z0, z1 := z0s[w], z1s[w]
		x2 := ^(x0 | x1)
		y2 := ^(y0 | y1)
		z2 := ^(z0 | z1)
		xs := [3]uint64{x0, x1, x2}
		ys := [3]uint64{y0, y1, y2}
		zs := [3]uint64{z0, z1, z2}
		idx := 0
		for gx := 0; gx < 3; gx++ {
			for gy := 0; gy < 3; gy++ {
				xy := xs[gx] & ys[gy]
				ft[idx] += int32(bits.OnesCount64(xy & zs[0]))
				ft[idx+1] += int32(bits.OnesCount64(xy & zs[1]))
				ft[idx+2] += int32(bits.OnesCount64(xy & zs[2]))
				idx += 3
			}
		}
	}
}

// AccumulateSplitLanes4 is AccumulateSplit with the word loop unrolled
// over independent pairs, the 256-bit "vector" analogue of approach V4
// on AVX-class devices: the two words' dependency chains interleave in
// the out-of-order core the way SIMD lanes would.
func AccumulateSplitLanes4(ft *[Cells]int32, x0s, x1s, y0s, y1s, z0s, z1s []uint64) {
	n := len(x0s)
	w := 0
	for ; w+2 <= n; w += 2 {
		ax0, ax1 := x0s[w], x1s[w]
		ay0, ay1 := y0s[w], y1s[w]
		az0, az1 := z0s[w], z1s[w]
		bx0, bx1 := x0s[w+1], x1s[w+1]
		by0, by1 := y0s[w+1], y1s[w+1]
		bz0, bz1 := z0s[w+1], z1s[w+1]
		axs := [3]uint64{ax0, ax1, ^(ax0 | ax1)}
		ays := [3]uint64{ay0, ay1, ^(ay0 | ay1)}
		azs := [3]uint64{az0, az1, ^(az0 | az1)}
		bxs := [3]uint64{bx0, bx1, ^(bx0 | bx1)}
		bys := [3]uint64{by0, by1, ^(by0 | by1)}
		bzs := [3]uint64{bz0, bz1, ^(bz0 | bz1)}
		idx := 0
		for gx := 0; gx < 3; gx++ {
			for gy := 0; gy < 3; gy++ {
				axy := axs[gx] & ays[gy]
				bxy := bxs[gx] & bys[gy]
				ft[idx] += int32(bits.OnesCount64(axy&azs[0]) + bits.OnesCount64(bxy&bzs[0]))
				ft[idx+1] += int32(bits.OnesCount64(axy&azs[1]) + bits.OnesCount64(bxy&bzs[1]))
				ft[idx+2] += int32(bits.OnesCount64(axy&azs[2]) + bits.OnesCount64(bxy&bzs[2]))
				idx += 3
			}
		}
	}
	if w < n {
		AccumulateSplit(ft, x0s[w:], x1s[w:], y0s[w:], y1s[w:], z0s[w:], z1s[w:])
	}
}

// AccumulateSplitLanes8 widens AccumulateSplitLanes4 to four
// interleaved words per iteration (the 512-bit analogue). Register
// pressure caps the useful width on amd64; the remainder reuses the
// pair kernel.
func AccumulateSplitLanes8(ft *[Cells]int32, x0s, x1s, y0s, y1s, z0s, z1s []uint64) {
	n := len(x0s)
	w := 0
	for ; w+4 <= n; w += 4 {
		ax0, ax1 := x0s[w], x1s[w]
		ay0, ay1 := y0s[w], y1s[w]
		az0, az1 := z0s[w], z1s[w]
		bx0, bx1 := x0s[w+1], x1s[w+1]
		by0, by1 := y0s[w+1], y1s[w+1]
		bz0, bz1 := z0s[w+1], z1s[w+1]
		cx0, cx1 := x0s[w+2], x1s[w+2]
		cy0, cy1 := y0s[w+2], y1s[w+2]
		cz0, cz1 := z0s[w+2], z1s[w+2]
		dx0, dx1 := x0s[w+3], x1s[w+3]
		dy0, dy1 := y0s[w+3], y1s[w+3]
		dz0, dz1 := z0s[w+3], z1s[w+3]
		axs := [3]uint64{ax0, ax1, ^(ax0 | ax1)}
		ays := [3]uint64{ay0, ay1, ^(ay0 | ay1)}
		azs := [3]uint64{az0, az1, ^(az0 | az1)}
		bxs := [3]uint64{bx0, bx1, ^(bx0 | bx1)}
		bys := [3]uint64{by0, by1, ^(by0 | by1)}
		bzs := [3]uint64{bz0, bz1, ^(bz0 | bz1)}
		cxs := [3]uint64{cx0, cx1, ^(cx0 | cx1)}
		cys := [3]uint64{cy0, cy1, ^(cy0 | cy1)}
		czs := [3]uint64{cz0, cz1, ^(cz0 | cz1)}
		dxs := [3]uint64{dx0, dx1, ^(dx0 | dx1)}
		dys := [3]uint64{dy0, dy1, ^(dy0 | dy1)}
		dzs := [3]uint64{dz0, dz1, ^(dz0 | dz1)}
		idx := 0
		for gx := 0; gx < 3; gx++ {
			for gy := 0; gy < 3; gy++ {
				axy := axs[gx] & ays[gy]
				bxy := bxs[gx] & bys[gy]
				cxy := cxs[gx] & cys[gy]
				dxy := dxs[gx] & dys[gy]
				ft[idx] += int32(bits.OnesCount64(axy&azs[0]) + bits.OnesCount64(bxy&bzs[0]) +
					bits.OnesCount64(cxy&czs[0]) + bits.OnesCount64(dxy&dzs[0]))
				ft[idx+1] += int32(bits.OnesCount64(axy&azs[1]) + bits.OnesCount64(bxy&bzs[1]) +
					bits.OnesCount64(cxy&czs[1]) + bits.OnesCount64(dxy&dzs[1]))
				ft[idx+2] += int32(bits.OnesCount64(axy&azs[2]) + bits.OnesCount64(bxy&bzs[2]) +
					bits.OnesCount64(cxy&czs[2]) + bits.OnesCount64(dxy&dzs[2]))
				idx += 3
			}
		}
	}
	if w < n {
		AccumulateSplitLanes4(ft, x0s[w:], x1s[w:], y0s[w:], y1s[w:], z0s[w:], z1s[w:])
	}
}

// BuildReference computes the table directly from the genotype matrix,
// one sample at a time. It is the oracle the optimized builders are
// verified against.
func BuildReference(mx *dataset.Matrix, i, j, k int) Table {
	var t Table
	for s := 0; s < mx.Samples(); s++ {
		combo := ComboIndex(int(mx.Geno(i, s)), int(mx.Geno(j, s)), int(mx.Geno(k, s)))
		t.Counts[mx.Phen(s)][combo]++
	}
	return t
}
