package contingency

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trigene/internal/dataset"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(r.Intn(2)))
	}
	return mx
}

func TestComboIndex(t *testing.T) {
	if ComboIndex(0, 0, 0) != 0 || ComboIndex(2, 2, 2) != 26 || ComboIndex(0, 1, 2) != 5 {
		t.Error("combo indexing wrong")
	}
	seen := map[int]bool{}
	for gx := 0; gx < 3; gx++ {
		for gy := 0; gy < 3; gy++ {
			for gz := 0; gz < 3; gz++ {
				idx := ComboIndex(gx, gy, gz)
				if idx < 0 || idx >= Cells || seen[idx] {
					t.Fatalf("combo index (%d,%d,%d)=%d invalid or duplicate", gx, gy, gz, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestBuildersAgreeWithReference(t *testing.T) {
	mx := randomMatrix(40, 8, 173) // odd N exercises pad correction
	b := dataset.Binarize(mx)
	s := dataset.SplitBinarize(mx)
	controls, cases := mx.ClassCounts()

	triples := [][3]int{{0, 1, 2}, {1, 3, 7}, {0, 4, 5}, {5, 6, 7}, {2, 3, 4}}
	for _, tr := range triples {
		want := BuildReference(mx, tr[0], tr[1], tr[2])
		if err := want.Validate(controls, cases); err != nil {
			t.Fatalf("reference table invalid: %v", err)
		}
		naive := BuildNaive(b, tr[0], tr[1], tr[2])
		if !naive.Equal(&want) {
			t.Errorf("triple %v: BuildNaive differs from reference\ngot:\n%swant:\n%s", tr, naive.String(), want.String())
		}
		split := BuildSplit(s, tr[0], tr[1], tr[2])
		if !split.Equal(&want) {
			t.Errorf("triple %v: BuildSplit differs from reference\ngot:\n%swant:\n%s", tr, split.String(), want.String())
		}
	}
}

func TestCellAccessor(t *testing.T) {
	mx := randomMatrix(41, 3, 50)
	want := BuildReference(mx, 0, 1, 2)
	for gx := 0; gx < 3; gx++ {
		for gy := 0; gy < 3; gy++ {
			for gz := 0; gz < 3; gz++ {
				if want.Cell(dataset.Case, gx, gy, gz) != want.Counts[dataset.Case][ComboIndex(gx, gy, gz)] {
					t.Fatal("Cell accessor mismatch")
				}
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mx := randomMatrix(42, 3, 60)
	tab := BuildReference(mx, 0, 1, 2)
	controls, cases := mx.ClassCounts()
	if err := tab.Validate(controls, cases); err != nil {
		t.Fatal(err)
	}
	tab.Counts[0][5]++
	if err := tab.Validate(controls, cases); err == nil {
		t.Error("inflated table passed validation")
	}
	tab.Counts[0][5] -= 2
	tab.Counts[0][6]++ // totals ok again, but make one negative
	tab.Counts[0][5] = -1
	tab.Counts[0][6] += 1
	if err := tab.Validate(controls, cases); err == nil {
		t.Error("negative cell passed validation")
	}
}

// Property: all three builders produce identical tables for arbitrary
// datasets and triples, and lane kernels match the scalar kernel.
func TestBuilderEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%700) + 2
		mx := randomMatrix(seed, 6, n)
		b := dataset.Binarize(mx)
		s := dataset.SplitBinarize(mx)
		want := BuildReference(mx, 1, 3, 5)
		naive := BuildNaive(b, 1, 3, 5)
		split := BuildSplit(s, 1, 3, 5)
		return naive.Equal(&want) && split.Equal(&want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLaneKernelsMatchScalar(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, words := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33} {
		mk := func() []uint64 {
			w := make([]uint64, words)
			for i := range w {
				w[i] = r.Uint64()
			}
			return w
		}
		x0, x1, y0, y1, z0, z1 := mk(), mk(), mk(), mk(), mk(), mk()
		var scalar, l4, l8 [Cells]int32
		AccumulateSplit(&scalar, x0, x1, y0, y1, z0, z1)
		AccumulateSplitLanes4(&l4, x0, x1, y0, y1, z0, z1)
		AccumulateSplitLanes8(&l8, x0, x1, y0, y1, z0, z1)
		if scalar != l4 {
			t.Errorf("words=%d: lanes4 differs from scalar", words)
		}
		if scalar != l8 {
			t.Errorf("words=%d: lanes8 differs from scalar", words)
		}
	}
}

func TestAccumulateEmptyRange(t *testing.T) {
	var ft [Cells]int32
	AccumulateSplit(&ft, nil, nil, nil, nil, nil, nil)
	AccumulateSplitLanes4(&ft, nil, nil, nil, nil, nil, nil)
	AccumulateSplitLanes8(&ft, nil, nil, nil, nil, nil, nil)
	for _, c := range ft {
		if c != 0 {
			t.Fatal("empty accumulate changed counters")
		}
	}
}

func TestAccumulateIsAdditive(t *testing.T) {
	// Accumulating two word ranges separately must equal accumulating
	// the concatenation: the blocked engine path depends on this.
	r := rand.New(rand.NewSource(44))
	words := 10
	mk := func() []uint64 {
		w := make([]uint64, words)
		for i := range w {
			w[i] = r.Uint64()
		}
		return w
	}
	x0, x1, y0, y1, z0, z1 := mk(), mk(), mk(), mk(), mk(), mk()
	var whole, parts [Cells]int32
	AccumulateSplit(&whole, x0, x1, y0, y1, z0, z1)
	cut := 4
	AccumulateSplit(&parts, x0[:cut], x1[:cut], y0[:cut], y1[:cut], z0[:cut], z1[:cut])
	AccumulateSplit(&parts, x0[cut:], x1[cut:], y0[cut:], y1[cut:], z0[cut:], z1[cut:])
	if whole != parts {
		t.Error("accumulation is not additive across word ranges")
	}
}

func TestClassTotalAndString(t *testing.T) {
	mx := randomMatrix(45, 3, 30)
	tab := BuildReference(mx, 0, 1, 2)
	controls, cases := mx.ClassCounts()
	if tab.ClassTotal(dataset.Control) != controls || tab.ClassTotal(dataset.Case) != cases {
		t.Error("class totals wrong")
	}
	if s := tab.String(); len(s) == 0 {
		t.Error("String returned empty")
	}
}
