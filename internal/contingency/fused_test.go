package contingency

import (
	"math/rand"
	"testing"

	"trigene/internal/dataset"
)

// randomPlanes fabricates n-word x/y/z plane pairs the way SplitBinarize
// lays them out: plane 0 and plane 1 never share a bit, so the NOR-derived
// genotype-2 plane is exact.
func randomPlanes(r *rand.Rand, n int) (p0, p1 []uint64) {
	p0 = make([]uint64, n)
	p1 = make([]uint64, n)
	for w := 0; w < n; w++ {
		a := r.Uint64()
		b := r.Uint64()
		p0[w] = a &^ b
		p1[w] = b &^ a
	}
	return p0, p1
}

// TestFusedKernelsMatchSplit drives every fused variant against
// AccumulateSplit over ragged word counts, including the zero-word and
// sub-unroll tails the Lanes/X2 remainder paths must handle.
func TestFusedKernelsMatchSplit(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 31} {
		x0, x1 := randomPlanes(r, n)
		u0, u1 := randomPlanes(r, n) // second x for the X2 kernel
		y0, y1 := randomPlanes(r, n)
		z0, z1 := randomPlanes(r, n)

		var wantA, wantB [Cells]int32
		AccumulateSplit(&wantA, x0, x1, y0, y1, z0, z1)
		AccumulateSplit(&wantB, u0, u1, y0, y1, z0, z1)

		pair := make([]uint64, PairPlanes*n)
		BuildPairPlanes(pair, y0, y1, z0, z1)

		kernels := []struct {
			name string
			fn   func(*[Cells]int32, []uint64, []uint64, []uint64)
		}{
			{"AccumulateFused", AccumulateFused},
			{"AccumulateFusedLanes4", AccumulateFusedLanes4},
			{"AccumulateFusedLanes8", AccumulateFusedLanes8},
		}
		for _, k := range kernels {
			var got [Cells]int32
			k.fn(&got, x0, x1, pair)
			if got != wantA {
				t.Errorf("n=%d: %s differs from AccumulateSplit\ngot  %v\nwant %v", n, k.name, got, wantA)
			}
		}

		var gotA, gotB [Cells]int32
		AccumulateFusedX2(&gotA, &gotB, x0, x1, u0, u1, pair)
		if gotA != wantA || gotB != wantB {
			t.Errorf("n=%d: AccumulateFusedX2 differs from AccumulateSplit\ngotA  %v\nwantA %v\ngotB  %v\nwantB %v",
				n, gotA, wantA, gotB, wantB)
		}
	}
}

// TestFusedAccumulateIsAdditive asserts the fused kernels accumulate
// (+=) rather than overwrite, since the blocked engine calls them once
// per word-block on the same table.
func TestFusedAccumulateIsAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	n := 6
	x0, x1 := randomPlanes(r, n)
	y0, y1 := randomPlanes(r, n)
	z0, z1 := randomPlanes(r, n)
	pair := make([]uint64, PairPlanes*n)
	BuildPairPlanes(pair, y0, y1, z0, z1)

	var once, twice [Cells]int32
	AccumulateFused(&once, x0, x1, pair)
	AccumulateFused(&twice, x0, x1, pair)
	AccumulateFused(&twice, x0, x1, pair)
	for i := range once {
		if twice[i] != 2*once[i] {
			t.Fatalf("cell %d: two passes gave %d, want %d", i, twice[i], 2*once[i])
		}
	}
}

// buildSplitFused rebuilds BuildSplit on top of the fused kernels: pair
// planes from (j, k), fused accumulation of i, pad correction on cell
// 26. Used to verify the fused path against the sample-by-sample oracle
// on real split encodings with pad bits.
func buildSplitFused(s *dataset.Split, i, j, k int, fn func(*[Cells]int32, []uint64, []uint64, []uint64)) Table {
	var t Table
	for class := 0; class < 2; class++ {
		n := s.Words[class]
		pair := make([]uint64, PairPlanes*n)
		BuildPairPlanes(pair,
			s.Plane(class, j, 0), s.Plane(class, j, 1),
			s.Plane(class, k, 0), s.Plane(class, k, 1))
		fn(&t.Counts[class], s.Plane(class, i, 0), s.Plane(class, i, 1), pair)
		t.Counts[class][Cells-1] -= int32(s.Pad[class])
	}
	return t
}

// TestFusedMatchesReferenceWithPadBits checks the fused pipeline end to
// end on split encodings whose final words carry pad bits: the NOR-
// derived planes inflate cell 26 and the standard correction must land
// on exactly the oracle counts.
func TestFusedMatchesReferenceWithPadBits(t *testing.T) {
	// 173 and 64+1 samples exercise ragged and one-bit-over-word pads;
	// 128 is the pad-free control.
	for _, samples := range []int{173, 65, 128, 40} {
		mx := randomMatrix(int64(100+samples), 8, samples)
		s := dataset.SplitBinarize(mx)
		controls, cases := mx.ClassCounts()
		for _, tr := range [][3]int{{0, 1, 2}, {1, 3, 7}, {2, 5, 6}} {
			want := BuildReference(mx, tr[0], tr[1], tr[2])
			if err := want.Validate(controls, cases); err != nil {
				t.Fatalf("reference table invalid: %v", err)
			}
			for _, k := range []struct {
				name string
				fn   func(*[Cells]int32, []uint64, []uint64, []uint64)
			}{
				{"AccumulateFused", AccumulateFused},
				{"AccumulateFusedLanes4", AccumulateFusedLanes4},
				{"AccumulateFusedLanes8", AccumulateFusedLanes8},
			} {
				got := buildSplitFused(s, tr[0], tr[1], tr[2], k.fn)
				if !got.Equal(&want) {
					t.Errorf("samples=%d triple %v: fused %s differs from reference\ngot:\n%swant:\n%s",
						samples, tr, k.name, got.String(), want.String())
				}
			}
		}
	}
}

// TestBuildPairPlanesLayout pins the plane-major layout: plane gy*3+gz
// lives at dst[(gy*3+gz)*n : +n].
func TestBuildPairPlanesLayout(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	n := 5
	y0, y1 := randomPlanes(r, n)
	z0, z1 := randomPlanes(r, n)
	dst := make([]uint64, PairPlanes*n)
	BuildPairPlanes(dst, y0, y1, z0, z1)
	for w := 0; w < n; w++ {
		ys := [3]uint64{y0[w], y1[w], ^(y0[w] | y1[w])}
		zs := [3]uint64{z0[w], z1[w], ^(z0[w] | z1[w])}
		for gy := 0; gy < 3; gy++ {
			for gz := 0; gz < 3; gz++ {
				want := ys[gy] & zs[gz]
				if got := dst[(gy*3+gz)*n+w]; got != want {
					t.Fatalf("plane (%d,%d) word %d = %#x, want %#x", gy, gz, w, got, want)
				}
			}
		}
	}
}
