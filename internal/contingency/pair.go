package contingency

import (
	"math/bits"

	"trigene/internal/dataset"
)

// Pairwise (second-order) tables. Two-way epistasis detection — the
// problem GBOOST, episNP and GWISFI target, and MPI3SNP's order-2 mode
// — needs 3^2 = 9 genotype-combination counts per class. To reuse the
// third-order objectives unchanged, pair counts are embedded in a
// Table at cells gx*3 + gy (all other cells stay zero; empty cells
// contribute exactly nothing to K2, MI and Gini).

// PairCells is the number of genotype combinations for a SNP pair.
const PairCells = 9

// PairComboIndex returns the embedded table row for (gx, gy).
func PairComboIndex(gx, gy int) int { return gx*3 + gy }

// AccumulateSplitPair adds the pair-combination counts contributed by a
// word range of the four stored planes. As with the triple kernel, the
// genotype-2 planes are derived by NOR without tail masking; if the
// range covers the padded final word the caller must subtract the
// padding from cell (2,2) = PairComboIndex(2,2).
func AccumulateSplitPair(ft *[Cells]int32, x0s, x1s, y0s, y1s []uint64) {
	n := len(x0s)
	if n == 0 {
		return
	}
	_ = x1s[n-1]
	_ = y0s[n-1]
	_ = y1s[n-1]
	for w := 0; w < n; w++ {
		x0, x1 := x0s[w], x1s[w]
		y0, y1 := y0s[w], y1s[w]
		xs := [3]uint64{x0, x1, ^(x0 | x1)}
		ys := [3]uint64{y0, y1, ^(y0 | y1)}
		for gx := 0; gx < 3; gx++ {
			x := xs[gx]
			ft[gx*3] += int32(bits.OnesCount64(x & ys[0]))
			ft[gx*3+1] += int32(bits.OnesCount64(x & ys[1]))
			ft[gx*3+2] += int32(bits.OnesCount64(x & ys[2]))
		}
	}
}

// BuildSplitPair constructs the embedded pair table for SNPs (i, j)
// from the phenotype-split dataset, applying the padding correction.
func BuildSplitPair(s *dataset.Split, i, j int) Table {
	var t Table
	for class := 0; class < 2; class++ {
		AccumulateSplitPair(&t.Counts[class],
			s.Plane(class, i, 0), s.Plane(class, i, 1),
			s.Plane(class, j, 0), s.Plane(class, j, 1))
		t.Counts[class][PairComboIndex(2, 2)] -= int32(s.Pad[class])
	}
	return t
}

// BuildReferencePair computes the embedded pair table directly from
// the genotype matrix, one sample at a time (the test oracle).
func BuildReferencePair(mx *dataset.Matrix, i, j int) Table {
	var t Table
	for s := 0; s < mx.Samples(); s++ {
		combo := PairComboIndex(int(mx.Geno(i, s)), int(mx.Geno(j, s)))
		t.Counts[mx.Phen(s)][combo]++
	}
	return t
}
