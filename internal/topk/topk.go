// Package topk holds the one bounded sorted-insert every backend's
// candidate accumulator shares. Keeping the algorithm in a single
// place is what guarantees the cross-backend bit-exact parity of
// sharded and heterogeneous merges: each caller supplies its
// objective-then-lexicographic comparator, and the insertion
// semantics cannot drift between copies.
package topk

// Insert inserts c into list — kept sorted best-first under better —
// capping it at k entries, and returns the updated slice. k is small
// (typically 1-100), so insertion sort beats a heap in practice and
// keeps the output ordering trivially deterministic. Insert allocates
// only while the slice grows toward k: with a prebuilt comparator it
// is allocation-free in the steady state, the hot-path requirement
// the scheduler arenas rely on.
func Insert[T any](list []T, c T, k int, better func(a, b T) bool) []T {
	if k == 0 {
		return list
	}
	n := len(list)
	if n == k && !better(c, list[n-1]) {
		return list
	}
	pos := n
	for pos > 0 && better(c, list[pos-1]) {
		pos--
	}
	if n < k {
		var zero T
		list = append(list, zero)
	} else if pos == n {
		return list
	}
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}
