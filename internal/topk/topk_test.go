package topk

import (
	"testing"
)

func asc(a, b int) bool { return a < b }

func TestInsertKeepsSortedCapped(t *testing.T) {
	var list []int
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		list = Insert(list, v, 3, asc)
	}
	want := []int{1, 2, 3}
	if len(list) != 3 {
		t.Fatalf("len %d", len(list))
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("list %v, want %v", list, want)
		}
	}
}

func TestInsertZeroK(t *testing.T) {
	if got := Insert(nil, 1, 0, asc); got != nil {
		t.Errorf("k=0 insert returned %v", got)
	}
}

func TestInsertBelowCapKeepsAll(t *testing.T) {
	var list []int
	for v := 10; v > 0; v-- {
		list = Insert(list, v, 100, asc)
	}
	if len(list) != 10 || list[0] != 1 || list[9] != 10 {
		t.Errorf("list %v", list)
	}
}

func TestInsertSteadyStateAllocFree(t *testing.T) {
	list := make([]int, 0, 4)
	for v := 0; v < 4; v++ {
		list = Insert(list, v, 4, asc)
	}
	n := 0
	allocs := testing.AllocsPerRun(64, func() {
		list = Insert(list, n%8, 4, asc)
		n++
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per steady-state insert, want 0", allocs)
	}
}
