package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Devices", "ID", "Name", "Perf")
	tab.AddRow("GN1", "Titan Xp", "43.3")
	tab.AddRow("GI2", "Iris Xe MAX", "4.6")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "Devices" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ID   Name") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns align: "Titan Xp" and "Iris Xe MAX" start at same offset.
	if strings.Index(lines[3], "Titan") != strings.Index(lines[4], "Iris") {
		t.Error("columns misaligned")
	}
	if strings.Contains(s, " \n") {
		t.Error("trailing spaces in output")
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d", tab.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow("x")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestAddRowShortAndPanic(t *testing.T) {
	tab := NewTable("t", "A", "B")
	tab.AddRow("only") // short rows allowed
	if tab.Rows() != 1 {
		t.Error("short row rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many cells")
		}
	}()
	tab.AddRow("1", "2", "3")
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("t", "A", "B", "C", "D")
	tab.AddRowf("dev", 1234.5678, 3.14159, 0.001234)
	s := tab.String()
	for _, want := range []string{"dev", "1235", "3.14", "0.0012"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234.56: "1235",
		12.345:  "12.35",
		0.1234:  "0.1234",
		-500.4:  "-500",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(0) != "N/A" {
		t.Error("zero speedup should be N/A")
	}
	if Speedup(1.637) != "1.64x" {
		t.Errorf("Speedup = %q", Speedup(1.637))
	}
}
