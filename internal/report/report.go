// Package report renders the aligned ASCII tables and series the
// benchmark harness and the CLI tools print when regenerating the
// paper's figures and tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled table with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered
// with %v for strings/ints and 4 significant digits for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		case float32:
			cells[i] = FormatFloat(float64(x))
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var out strings.Builder
	if t.Title != "" {
		out.WriteString(t.Title)
		out.WriteByte('\n')
	}
	line := func(cells []string) string {
		var lb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				lb.WriteString("  ")
			}
			lb.WriteString(cell)
			if i < len(cells)-1 {
				lb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(lb.String(), " ")
	}
	out.WriteString(line(t.Columns))
	out.WriteByte('\n')
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out.WriteString(line(sep))
	out.WriteByte('\n')
	for _, row := range t.rows {
		out.WriteString(line(row))
		out.WriteByte('\n')
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// String renders the table to a string, ignoring write errors.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// FormatFloat renders a float with sensible precision for report cells:
// large values get one decimal, small values four significant digits.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Speedup renders a ratio as "N.NNx", or "N/A" for unavailable
// baselines.
func Speedup(v float64) string {
	if v == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.2fx", v)
}
