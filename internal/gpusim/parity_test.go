package gpusim_test

// CPU-parity tests live in an external test package: they compare the
// simulator against trigene/internal/engine, which (via carm) imports
// gpusim itself, so an in-package test would form an import cycle.

import (
	"math/rand"
	"testing"

	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/store"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func encStore(mx *dataset.Matrix) *store.Store {
	st, err := store.New(mx)
	if err != nil {
		panic(err)
	}
	return st
}

func titan() device.GPU {
	g, err := device.GPUByID("GN1")
	if err != nil {
		panic(err)
	}
	return g
}

func TestAllKernelsMatchCPUEngine(t *testing.T) {
	mx := randomMatrix(80, 20, 300)
	cpu, err := engine.Search(mx, engine.Options{Approach: engine.V2Split})
	if err != nil {
		t.Fatal(err)
	}
	r := gpusim.New(titan())
	for k := gpusim.K1Naive; k <= gpusim.K5Fused; k++ {
		res, err := r.Search(encStore(mx), gpusim.Options{Kernel: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Best.I != cpu.Best.Triple.I || res.Best.J != cpu.Best.Triple.J ||
			res.Best.K != cpu.Best.Triple.K || res.Best.Score != cpu.Best.Score {
			t.Errorf("%v: best (%d,%d,%d)=%.6f, CPU (%d,%d,%d)=%.6f",
				k, res.Best.I, res.Best.J, res.Best.K, res.Best.Score,
				cpu.Best.Triple.I, cpu.Best.Triple.J, cpu.Best.Triple.K, cpu.Best.Score)
		}
	}
}

func TestOddSampleCountsMatchCPU(t *testing.T) {
	// Non-multiple-of-32 class sizes exercise the 32-bit pad correction.
	for _, n := range []int{33, 97, 131} {
		mx := randomMatrix(81, 10, n)
		cpu, err := engine.Search(mx, engine.Options{Approach: engine.V2Split})
		if err != nil {
			t.Fatal(err)
		}
		r := gpusim.New(titan())
		for _, k := range []gpusim.Kernel{gpusim.K2Split, gpusim.K3Transposed, gpusim.K4Tiled, gpusim.K5Fused} {
			res, err := r.Search(encStore(mx), gpusim.Options{Kernel: k})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best.Score != cpu.Best.Score {
				t.Errorf("n=%d %v: score %.9f != CPU %.9f", n, k, res.Best.Score, cpu.Best.Score)
			}
		}
	}
}

func TestWarp64DeviceMatchesCPU(t *testing.T) {
	// AMD wavefront width 64 exercises the wide-warp path.
	ga2, err := device.GPUByID("GA2")
	if err != nil {
		t.Fatal(err)
	}
	mx := randomMatrix(89, 14, 200)
	cpu, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []gpusim.Kernel{gpusim.K4Tiled, gpusim.K5Fused} {
		res, err := gpusim.New(ga2).Search(encStore(mx), gpusim.Options{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Score != cpu.Best.Score {
			t.Errorf("GA2 %v score %.9f != CPU %.9f", k, res.Best.Score, cpu.Best.Score)
		}
	}
}

func TestFusedSharesPairLoadsAcrossGroup(t *testing.T) {
	// The fused kernel loads y/z planes once per (j,k) group and builds
	// the nine pair-AND planes at the leader; the tiled kernel reloads
	// per thread. Fewer executed loads is the point of the fusion.
	mx := randomMatrix(90, 24, 512)
	r := gpusim.New(titan())
	tiled, err := r.Search(encStore(mx), gpusim.Options{Kernel: gpusim.K4Tiled})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := r.Search(encStore(mx), gpusim.Options{Kernel: gpusim.K5Fused})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Stats.Loads >= tiled.Stats.Loads {
		t.Errorf("fused executed %d loads, tiled %d: want fewer", fused.Stats.Loads, tiled.Stats.Loads)
	}
	if fused.Best.Score != tiled.Best.Score {
		t.Errorf("fused score %.9f != tiled %.9f", fused.Best.Score, tiled.Best.Score)
	}
}
