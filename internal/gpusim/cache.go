// Package gpusim is a functional-plus-timing simulator for the paper's
// GPU epistasis kernels (Algorithm 2). It executes the kernels at warp
// granularity over the real dataset — producing bit-exact frequency
// tables and scores that are validated against the CPU engine — while
// recording the memory transactions each warp issues (with the
// coalescing rules that distinguish approaches V2, V3 and V4) and the
// compute operations executed. A roofline-style timing model converts
// those counts into cycles for a configured device from Table II.
//
// The simulator replaces the physical GPUs the paper measures: the GPU
// study hinges on (a) memory coalescing, which is decided by the data
// layout, and (b) POPCNT throughput per compute unit, and the simulator
// models exactly those two mechanisms.
package gpusim

import "fmt"

// cacheLine is the L2 line size in bytes (128 B, the common value
// across the modeled architectures).
const cacheLine = 128

// lruCache is a set-associative cache with LRU replacement, used to
// model the device-level L2. Addresses are synthetic byte addresses.
type lruCache struct {
	sets [][]uint64 // per set: line tags, most recently used first
	ways int
	mask uint64

	hits, misses int64
}

// newLRUCache builds a cache of the given total size. Size is rounded
// down to a power-of-two set count; ways is clamped to at least 1.
func newLRUCache(sizeBytes, ways int) *lruCache {
	if ways < 1 {
		ways = 1
	}
	nsets := sizeBytes / (cacheLine * ways)
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two for cheap indexing.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	c := &lruCache{
		sets: make([][]uint64, nsets),
		ways: ways,
		mask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, ways)
	}
	return c
}

// access touches the line containing addr and reports whether it hit.
func (c *lruCache) access(addr uint64) bool {
	tag := addr / cacheLine
	set := c.sets[tag&c.mask]
	for i, t := range set {
		if t == tag {
			// Move to front.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[tag&c.mask] = set
	return false
}

// reset clears contents and counters.
func (c *lruCache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.hits, c.misses = 0, 0
}

func (c *lruCache) String() string {
	return fmt.Sprintf("lruCache{sets:%d ways:%d hits:%d misses:%d}", len(c.sets), c.ways, c.hits, c.misses)
}
