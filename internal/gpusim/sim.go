package gpusim

import (
	"context"
	"fmt"
	"math/bits"
	"strings"
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/store"
	"trigene/internal/topk"
)

// Kernel selects one of the paper's four GPU approaches.
type Kernel int

const (
	// K1Naive: three stored planes plus phenotype, SNP-major layout.
	K1Naive Kernel = iota + 1
	// K2Split: phenotype-split data, NOR-inferred genotype 2,
	// SNP-major layout (uncoalesced warp loads).
	K2Split
	// K3Transposed: K2 on the transposed layout, coalescing loads of
	// consecutive-combination threads.
	K3Transposed
	// K4Tiled: K2 on the SNP-tiled layout with workgroup-sized tiles.
	K4Tiled
	// K5Fused: K4 with the (j, k) pair-AND products hoisted out of the
	// per-thread loop — consecutive colex-ranked threads share (j, k),
	// so one thread per group loads the y/z planes and builds the nine
	// pair products for the whole group (shared-local-memory staging on
	// a real device), leaving each thread 1 NOR + 27 AND + 27 POPCNT.
	K5Fused
)

// String returns the kernel name used in reports.
func (k Kernel) String() string {
	switch k {
	case K1Naive:
		return "V1"
	case K2Split:
		return "V2"
	case K3Transposed:
		return "V3"
	case K4Tiled:
		return "V4"
	case K5Fused:
		return "V4F"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel accepts "V1".."V4", the fused "V4F" (or its numeric
// wire forms "V5"/"V6" — the CPU numbering has two fused variants,
// both mapping onto the one fused GPU kernel), plain digits, or the
// descriptive names "naive", "split", "transposed", "tiled" and
// "fused", all case-insensitively.
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "v1", "1", "naive":
		return K1Naive, nil
	case "v2", "2", "split":
		return K2Split, nil
	case "v3", "3", "transposed":
		return K3Transposed, nil
	case "v4", "4", "tiled":
		return K4Tiled, nil
	case "v4f", "v5", "5", "v6", "6", "fused", "fused-tiled", "tiled-fused":
		return K5Fused, nil
	default:
		return 0, fmt.Errorf("gpusim: unknown kernel %q (want V1..V4, V4F, or naive/split/transposed/tiled/fused)", s)
	}
}

// maxWarp is the largest warp width across modeled devices (GCN/CDNA
// wavefronts are 64 wide).
const maxWarp = 64

// Per-thread, per-32-bit-word operation counts for the kernels, per
// class pass. The naive kernel evaluates 27 cells at 6 instructions
// each (paper: 27x6 = 162, of which 2 are POPCNT); the split kernels
// spend 3 NOR + 9 XY-AND + 27 Z-AND + 27 table adds and 27 POPCNT
// (paper's "57" counts the NORs once and one AND+POPCNT per cell).
const (
	naiveALUPerWord  = 108 // 27 * (2 plane AND + phenotype AND + ANDNOT)
	naiveAddPerWord  = 54
	naivePopPerWord  = 54
	naiveLoadPerWord = 10 // 9 plane words + 1 phenotype word

	splitALUPerWord  = 39 // 3 NOR + 9 XY AND + 27 Z AND
	splitAddPerWord  = 27
	splitPopPerWord  = 27
	splitLoadPerWord = 6

	// The fused kernel splits its accounting between per-thread work
	// (the x plane against the nine cached pair products) and per-
	// (j, k)-group work (loading y/z and building the products once
	// for every thread that shares the pair).
	fusedThreadALUPerWord  = 28 // 1 NOR + 27 AND
	fusedAddPerWord        = 27
	fusedPopPerWord        = 27
	fusedPairALUPerWord    = 11 // 2 NOR + 9 AND, once per group
	fusedThreadLoadPerWord = 2  // x planes
	fusedPairLoadPerWord   = 4  // y/z planes, once per group
)

// Options configures a simulated search.
type Options struct {
	// Kernel selects the approach (default K4Tiled; K5Fused is the
	// pair-AND-hoisted variant the CPU engine's fused approaches map
	// to).
	Kernel Kernel
	// BS is the SNP tile width for K4Tiled; the paper sets it to a
	// multiple of the warp width (default: the device warp size).
	BS int
	// Objective ranks candidates (default Bayesian K2).
	Objective score.Objective
	// TopK is how many ranked candidates to return (default 1). The
	// simulated device keeps the list host-side, exactly as the CPU
	// engine's workers do, so sharded and heterogeneous runs merge
	// full per-side top-K lists instead of dropping to a single best.
	TopK int
	// CoalesceBytes is the memory transaction segment size (default 32).
	CoalesceBytes int
	// L2Ways is the modeled L2 associativity (default 16).
	L2Ways int
	// RankLo and RankHi restrict the search to combination ranks
	// [RankLo, RankHi) in colexicographic order; both zero means the
	// full space. Sharded deployments partition on this.
	RankLo, RankHi int64
	// Tiles optionally supplies an externally shared claiming cursor
	// over the combination-rank space: the simulated device then
	// steals tiles from the same space as the cursor's other consumers
	// (the heterogeneous backend's CPU half). RankLo/RankHi are
	// ignored when set — the cursor owns the space.
	Tiles *sched.Cursor
	// Started, when non-nil, is invoked exactly once, right after the
	// device's first tile claim (successful or not). The heterogeneous
	// backend sequences its CPU half on it, so the device is
	// guaranteed a share of a shared space before faster consumers
	// start draining it.
	Started func()
	// ClaimGrains seeds the device's claim-span multiplier on a shared
	// cursor: how many CPU-sized grains one device claim covers
	// (0 = 4, the legacy default). The planner derives it from the
	// modeled device/CPU throughput ratio.
	ClaimGrains int64
	// Meter, when non-nil, records this consumer's realized
	// throughput under slot MeterConsumer, and — on a shared cursor —
	// feeds it back: once the meter has warmed up, the measured
	// relative rate refines the claim multiplier mid-search, so a
	// mis-modeled seed converges instead of persisting.
	Meter         *sched.ThroughputMeter
	MeterConsumer int
	// BSched is the per-dimension scheduling block: each kernel
	// enqueue covers BSched^3 thread slots indexed by (i0, i1, i2), and
	// slots violating the i0 < i1 < i2 guard idle (Algorithm 2). The
	// default is the paper's 256. Only the utilization accounting
	// depends on it.
	BSched int
	// ModelGuardWaste, when set, charges the idle guard slots to the
	// compute time (cycles scale by Scheduled/Active threads). Off by
	// default: the paper's throughputs are reported per useful
	// combination.
	ModelGuardWaste bool
	// Context optionally allows cancellation; nil means
	// context.Background(). Cancellation is observed between warp
	// batches and returns the context error.
	Context context.Context
}

// Stats aggregates the executed operations, the memory behaviour and
// the modeled timing of one simulated search. The JSON tags are part
// of the Report wire format (trigene's stable Report JSON carries
// these stats on the "gpu" key) and must stay stable.
type Stats struct {
	Combinations int64   `json:"combinations"`
	Elements     float64 `json:"elements"`

	ALUOps    int64 `json:"aluOps"`    // bitwise ops + table adds, on stream cores
	PopcntOps int64 `json:"popcntOps"` // on the POPCNT-capable units
	Loads     int64 `json:"loads"`     // per-thread 32-bit loads issued

	RequestedBytes int64 `json:"requestedBytes"` // Loads * 4
	Transactions   int64 `json:"transactions"`   // coalesced memory transactions
	L2Hits         int64 `json:"l2Hits"`
	L2Misses       int64 `json:"l2Misses"`
	L2Bytes        int64 `json:"l2Bytes"`   // Transactions * CoalesceBytes
	DRAMBytes      int64 `json:"dramBytes"` // L2Misses * cacheLine

	// Thread-scheduling accounting (Algorithm 2): every enqueue spawns
	// BSched^3 thread slots over an (i0, i1, i2) block; only slots with
	// i0 < i1 < i2 do work. Utilization = Active / Scheduled.
	ScheduledThreads int64   `json:"scheduledThreads"`
	ActiveThreads    int64   `json:"activeThreads"`
	Utilization      float64 `json:"utilization"`

	ComputeCycles float64 `json:"computeCycles"`
	MemoryCycles  float64 `json:"memoryCycles"`
	Cycles        float64 `json:"cycles"`
	ModelSeconds  float64 `json:"modelSeconds"`

	ElementsPerSec      float64 `json:"elementsPerSec"` // modeled, whole device
	ElementsPerCyclePer struct {
		CU         float64 `json:"cu"`
		StreamCore float64 `json:"streamCore"`
	} `json:"elementsPerCyclePer"`
}

// Candidate is a scored SNP triple (i < j < k).
type Candidate struct {
	I, J, K int
	Score   float64
}

// Result is the outcome of a simulated search.
type Result struct {
	Best Candidate
	// TopK holds up to Options.TopK candidates in best-first order
	// (objective first, lexicographic triple tie-break — the ordering
	// every backend shares).
	TopK  []Candidate
	Stats Stats
}

// Runner simulates GPU searches on one device.
type Runner struct {
	dev device.GPU
}

// New returns a Runner for the given Table II device.
func New(dev device.GPU) *Runner { return &Runner{dev: dev} }

// Device returns the modeled device.
func (r *Runner) Device() device.GPU { return r.dev }

// Search runs the exhaustive 3-way search on the simulated device and
// returns the (bit-exact) best candidate together with the modeled
// execution statistics. The 32-bit word encodings come from the
// encoded-dataset store, which builds each (kernel, layout, tile
// width) form once and shares it across runs, layouts and devices.
func (r *Runner) Search(st *store.Store, opts Options) (*Result, error) {
	if st.SNPs() < 3 {
		return nil, fmt.Errorf("gpusim: need at least 3 SNPs, have %d", st.SNPs())
	}
	if opts.Kernel == 0 {
		opts.Kernel = K4Tiled
	}
	if opts.Kernel < K1Naive || opts.Kernel > K5Fused {
		return nil, fmt.Errorf("gpusim: invalid kernel %d", int(opts.Kernel))
	}
	if opts.BS == 0 {
		opts.BS = r.dev.WarpSize
	}
	if opts.BS < 1 {
		return nil, fmt.Errorf("gpusim: invalid tile width %d", opts.BS)
	}
	if opts.Objective == nil {
		opts.Objective = score.NewK2(st.Samples())
	}
	if opts.TopK == 0 {
		opts.TopK = 1
	}
	if opts.TopK < 0 {
		return nil, fmt.Errorf("gpusim: invalid TopK %d", opts.TopK)
	}
	if opts.CoalesceBytes == 0 {
		opts.CoalesceBytes = 32
	}
	if opts.CoalesceBytes < 4 || opts.CoalesceBytes&(opts.CoalesceBytes-1) != 0 {
		return nil, fmt.Errorf("gpusim: coalesce segment must be a power of two >= 4, got %d", opts.CoalesceBytes)
	}
	if opts.L2Ways == 0 {
		opts.L2Ways = 16
	}
	if opts.BSched == 0 {
		opts.BSched = 256
	}
	if opts.BSched < 1 {
		return nil, fmt.Errorf("gpusim: invalid BSched %d", opts.BSched)
	}

	sim := &simState{
		dev:  r.dev,
		opts: opts,
		l2:   newLRUCache(r.dev.L2Bytes, opts.L2Ways),
	}
	switch opts.Kernel {
	case K1Naive:
		sim.naive = st.Naive32()
	case K2Split:
		sim.words = st.Words32(dataset.LayoutRowMajor, 0)
	case K3Transposed:
		sim.words = st.Words32(dataset.LayoutTransposed, 0)
	case K4Tiled, K5Fused:
		sim.words = st.Words32(dataset.LayoutTiled, opts.BS)
	}

	m := st.SNPs()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	warp := r.dev.WarpSize

	// Work distribution goes through the tile scheduler: either the
	// run's own cursor over [RankLo, RankHi), or a shared cursor other
	// consumers are draining concurrently. One tile is one simulated
	// kernel enqueue; warps iterate inside it, and cancellation is
	// observed between tiles.
	cur := opts.Tiles
	claimGrains := int64(1)
	shared := cur != nil
	if cur == nil {
		base, total := int64(0), combin.Triples(m)
		if opts.RankLo != 0 || opts.RankHi != 0 {
			if opts.RankLo < 0 || opts.RankHi < opts.RankLo || opts.RankHi > total {
				return nil, fmt.Errorf("gpusim: invalid rank range [%d,%d) of %d", opts.RankLo, opts.RankHi, total)
			}
			base, total = opts.RankLo, opts.RankHi
		}
		cur = sched.NewCursor(sched.NewSource(base, total, int64(warp)*256))
	} else {
		// On a shared cursor the grain was sized for CPU workers; the
		// device claims larger spans to amortize its launch overhead,
		// the way real kernel enqueues batch the space. The planner
		// seeds the multiplier from the modeled throughput ratio; the
		// meter refines it below once measured rates exist.
		claimGrains = 4
		if opts.ClaimGrains > 0 {
			claimGrains = opts.ClaimGrains
		}
	}
	started := opts.Started
	signalStarted := func() {
		if started != nil {
			started()
			started = nil
		}
	}
	// Cancellation is observed between claims and again between warp
	// batches inside a claimed tile, so a cancelled search returns
	// within one warp even when the tile is large (a device claim on a
	// shared heterogeneous cursor spans several CPU grains).
	for {
		if err := ctx.Err(); err != nil {
			signalStarted()
			return nil, err
		}
		if shared && opts.Meter != nil {
			// Mid-search refinement: once both sides have measured
			// rates, claim spans proportional to the realized ratio
			// rather than the seed.
			if g := opts.Meter.SuggestGrains(opts.MeterConsumer, 64); g > 0 {
				claimGrains = g
			}
		}
		t, ok := cur.Claim(claimGrains)
		signalStarted()
		if !ok {
			break
		}
		tileStart := time.Now()
		for lo := t.Lo; lo < t.Hi; lo += int64(warp) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + int64(warp)
			if hi > t.Hi {
				hi = t.Hi
			}
			sim.runWarp(m, lo, hi)
		}
		sim.stats.Combinations += t.Len()
		if opts.Meter != nil {
			opts.Meter.Record(opts.MeterConsumer, t.Len(), time.Since(tileStart))
		}
		cur.Finish(t.Len())
	}

	sim.stats.Elements = float64(sim.stats.Combinations) * float64(st.Samples())
	sim.accountScheduling(m)
	sim.finishTiming()
	res := &Result{Stats: sim.stats, TopK: sim.top}
	if len(sim.top) > 0 {
		res.Best = sim.top[0]
	} else {
		res.Best = Candidate{Score: opts.Objective.Worst()}
	}
	return res, nil
}

// accountScheduling computes the Algorithm 2 thread-slot utilization:
// kernel enqueues cover block triples (b0 <= b1 <= b2) of BSched-wide
// index blocks, so the scheduled slots are C(nb+2,3) * BSched^3 scaled
// to the evaluated rank share.
func (s *simState) accountScheduling(m int) {
	bs := int64(s.opts.BSched)
	nb := int64(combin.TripleBlocks(m, s.opts.BSched))
	scheduledFull := combin.Triples(int(nb)+2) * bs * bs * bs
	totalFull := combin.Triples(m)
	share := 1.0
	if totalFull > 0 {
		share = float64(s.stats.Combinations) / float64(totalFull)
	}
	s.stats.ActiveThreads = s.stats.Combinations
	s.stats.ScheduledThreads = int64(float64(scheduledFull) * share)
	if s.stats.ScheduledThreads > 0 {
		s.stats.Utilization = float64(s.stats.ActiveThreads) / float64(s.stats.ScheduledThreads)
	}
}

// simState carries the per-search mutable state.
type simState struct {
	dev  device.GPU
	opts Options
	l2   *lruCache

	naive *dataset.Naive32
	words *dataset.Words32

	stats Stats
	top   []Candidate // best-first, capped at opts.TopK
	cmp   func(a, b Candidate) bool

	// Reused warp-sized buffers.
	ti, tj, tk [maxWarp]int
	regs       [3][3][maxWarp]uint32 // [snp role][plane][thread]
	phenRegs   [maxWarp]uint32
	ft         [maxWarp][2][contingency.Cells]int32
	addrs      [maxWarp]uint64
}

// runWarp executes threads for combination ranks [lo, hi).
func (s *simState) runWarp(m int, lo, hi int64) {
	tc := int(hi - lo)
	i, j, k := combin.UnrankTriple(lo, m)
	for t := 0; t < tc; t++ {
		s.ti[t], s.tj[t], s.tk[t] = i, j, k
		i, j, k, _ = combin.NextTriple(i, j, k, m)
	}
	for t := 0; t < tc; t++ {
		s.ft[t] = [2][contingency.Cells]int32{}
	}
	switch s.opts.Kernel {
	case K1Naive:
		s.runWarpNaive(tc)
	case K5Fused:
		s.runWarpFused(tc)
	default:
		s.runWarpSplit(tc)
	}
	// Score each thread's table; the host-side reduction keeps the
	// deterministic lexicographic tie-break used by the CPU engine.
	for t := 0; t < tc; t++ {
		var tab contingency.Table
		tab.Counts = s.ft[t]
		sc := s.opts.Objective.Score(&tab)
		s.offer(Candidate{I: s.ti[t], J: s.tj[t], K: s.tk[t], Score: sc})
	}
}

// better orders candidates: objective score first, lexicographic
// triple as the deterministic tie-break (shared with every backend).
func (s *simState) better(a, b Candidate) bool {
	if a.Score != b.Score {
		return s.opts.Objective.Better(a.Score, b.Score)
	}
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.K < b.K
}

// offer inserts the candidate if it ranks among the TopK best seen.
func (s *simState) offer(c Candidate) {
	if s.cmp == nil {
		s.cmp = s.better
	}
	s.top = topk.Insert(s.top, c, s.opts.TopK, s.cmp)
}

// runWarpSplit executes one warp of the V2/V3/V4 kernel body.
func (s *simState) runWarpSplit(tc int) {
	w32 := s.words
	snps := [3]*[maxWarp]int{&s.ti, &s.tj, &s.tk}
	for class := 0; class < 2; class++ {
		words := w32.W[class]
		for w := 0; w < words; w++ {
			for role := 0; role < 3; role++ {
				for g := 0; g < 2; g++ {
					data := w32.Data(class, g)
					base := uint64(class*2+g) << 40
					for t := 0; t < tc; t++ {
						idx := w32.Index(snps[role][t], w, class)
						s.regs[role][g][t] = data[idx]
						s.addrs[t] = base + uint64(idx)*4
					}
					s.coalesce(tc)
				}
			}
			for t := 0; t < tc; t++ {
				x0, x1 := s.regs[0][0][t], s.regs[0][1][t]
				y0, y1 := s.regs[1][0][t], s.regs[1][1][t]
				z0, z1 := s.regs[2][0][t], s.regs[2][1][t]
				xs := [3]uint32{x0, x1, ^(x0 | x1)}
				ys := [3]uint32{y0, y1, ^(y0 | y1)}
				zs := [3]uint32{z0, z1, ^(z0 | z1)}
				ft := &s.ft[t][class]
				idx := 0
				for gx := 0; gx < 3; gx++ {
					for gy := 0; gy < 3; gy++ {
						xy := xs[gx] & ys[gy]
						ft[idx] += int32(bits.OnesCount32(xy & zs[0]))
						ft[idx+1] += int32(bits.OnesCount32(xy & zs[1]))
						ft[idx+2] += int32(bits.OnesCount32(xy & zs[2]))
						idx += 3
					}
				}
			}
		}
		wt := int64(words) * int64(tc)
		s.stats.ALUOps += (splitALUPerWord + splitAddPerWord) * wt
		s.stats.PopcntOps += splitPopPerWord * wt
		s.stats.Loads += splitLoadPerWord * wt
		// NOR padding correction, as on the CPU side.
		for t := 0; t < tc; t++ {
			s.ft[t][class][contingency.Cells-1] -= int32(w32.Pad[class])
		}
	}
}

// runWarpFused executes one warp of the K5 kernel body: threads with
// the same (j, k) form a group; the group's first thread loads the y/z
// planes and derives the nine pair-AND products, which the rest of the
// group reuses (shared-local-memory staging on a real device). Colex
// rank order makes groups long: i varies fastest, so a warp typically
// spans one or two (j, k) pairs.
func (s *simState) runWarpFused(tc int) {
	w32 := s.words
	groups := 0
	for t := 0; t < tc; t++ {
		if t == 0 || s.tj[t] != s.tj[t-1] || s.tk[t] != s.tk[t-1] {
			groups++
		}
	}
	for class := 0; class < 2; class++ {
		words := w32.W[class]
		for w := 0; w < words; w++ {
			// x planes: every thread loads its own words.
			for g := 0; g < 2; g++ {
				data := w32.Data(class, g)
				base := uint64(class*2+g) << 40
				for t := 0; t < tc; t++ {
					idx := w32.Index(s.ti[t], w, class)
					s.regs[0][g][t] = data[idx]
					s.addrs[t] = base + uint64(idx)*4
				}
				s.coalesce(tc)
			}
			// y/z planes: one load per (j, k) group, broadcast within it.
			for role := 1; role < 3; role++ {
				snp := &s.tj
				if role == 2 {
					snp = &s.tk
				}
				for g := 0; g < 2; g++ {
					data := w32.Data(class, g)
					base := uint64(class*2+g) << 40
					nl := 0
					for t := 0; t < tc; t++ {
						if t > 0 && s.tj[t] == s.tj[t-1] && s.tk[t] == s.tk[t-1] {
							s.regs[role][g][t] = s.regs[role][g][t-1]
							continue
						}
						idx := w32.Index(snp[t], w, class)
						s.regs[role][g][t] = data[idx]
						s.addrs[nl] = base + uint64(idx)*4
						nl++
					}
					s.coalesce(nl)
				}
			}
			var yz [9]uint32
			for t := 0; t < tc; t++ {
				if t == 0 || s.tj[t] != s.tj[t-1] || s.tk[t] != s.tk[t-1] {
					y0, y1 := s.regs[1][0][t], s.regs[1][1][t]
					z0, z1 := s.regs[2][0][t], s.regs[2][1][t]
					ys := [3]uint32{y0, y1, ^(y0 | y1)}
					zs := [3]uint32{z0, z1, ^(z0 | z1)}
					p := 0
					for gy := 0; gy < 3; gy++ {
						yz[p] = ys[gy] & zs[0]
						yz[p+1] = ys[gy] & zs[1]
						yz[p+2] = ys[gy] & zs[2]
						p += 3
					}
				}
				x0, x1 := s.regs[0][0][t], s.regs[0][1][t]
				xs := [3]uint32{x0, x1, ^(x0 | x1)}
				ft := &s.ft[t][class]
				idx := 0
				for gx := 0; gx < 3; gx++ {
					x := xs[gx]
					for p := 0; p < 9; p++ {
						ft[idx] += int32(bits.OnesCount32(x & yz[p]))
						idx++
					}
				}
			}
		}
		wt := int64(words) * int64(tc)
		gw := int64(words) * int64(groups)
		s.stats.ALUOps += (fusedThreadALUPerWord+fusedAddPerWord)*wt + fusedPairALUPerWord*gw
		s.stats.PopcntOps += fusedPopPerWord * wt
		s.stats.Loads += fusedThreadLoadPerWord*wt + fusedPairLoadPerWord*gw
		for t := 0; t < tc; t++ {
			s.ft[t][class][contingency.Cells-1] -= int32(w32.Pad[class])
		}
	}
}

// runWarpNaive executes one warp of the V1 kernel body.
func (s *simState) runWarpNaive(tc int) {
	n32 := s.naive
	snps := [3]*[maxWarp]int{&s.ti, &s.tj, &s.tk}
	for w := 0; w < n32.W; w++ {
		for role := 0; role < 3; role++ {
			for g := 0; g < 3; g++ {
				data := n32.Data(g)
				base := uint64(g) << 40
				for t := 0; t < tc; t++ {
					idx := snps[role][t]*n32.W + w
					s.regs[role][g][t] = data[idx]
					s.addrs[t] = base + uint64(idx)*4
				}
				s.coalesce(tc)
			}
		}
		phenBase := uint64(3) << 40
		for t := 0; t < tc; t++ {
			s.phenRegs[t] = n32.Phen[w]
			s.addrs[t] = phenBase + uint64(w)*4
		}
		s.coalesce(tc)
		for t := 0; t < tc; t++ {
			phen := s.phenRegs[t]
			idx := 0
			for gx := 0; gx < 3; gx++ {
				x := s.regs[0][gx][t]
				for gy := 0; gy < 3; gy++ {
					xy := x & s.regs[1][gy][t]
					for gz := 0; gz < 3; gz++ {
						v := xy & s.regs[2][gz][t]
						s.ft[t][dataset.Case][idx] += int32(bits.OnesCount32(v & phen))
						s.ft[t][dataset.Control][idx] += int32(bits.OnesCount32(v &^ phen))
						idx++
					}
				}
			}
		}
	}
	wt := int64(n32.W) * int64(tc)
	s.stats.ALUOps += (naiveALUPerWord + naiveAddPerWord) * wt
	s.stats.PopcntOps += naivePopPerWord * wt
	s.stats.Loads += naiveLoadPerWord * wt
}

// coalesce groups the warp's addresses into transaction segments,
// counts them, and touches the L2 once per distinct cache line.
func (s *simState) coalesce(tc int) {
	a := s.addrs[:tc]
	// Insertion sort: address streams are nearly sorted because thread
	// rank orders mostly follow SNP order.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
	seg := uint64(s.opts.CoalesceBytes)
	lastSeg := ^uint64(0)
	lastLine := ^uint64(0)
	for _, addr := range a {
		if sid := addr / seg; sid != lastSeg {
			lastSeg = sid
			s.stats.Transactions++
		}
		if lid := addr / cacheLine; lid != lastLine {
			lastLine = lid
			s.l2.access(addr)
		}
	}
}

// finishTiming converts the operation and transaction counts into the
// roofline timing model:
//
//	compute cycles = max(ALU / (CUs * streamCores/CU),
//	                     POPCNT / (CUs * popcnt/CU))
//	memory  cycles = max(L2 bytes / L2 bytes-per-cycle,
//	                     DRAM bytes / (DRAM GB/s / boost GHz))
//	total          = max(compute, memory)        [perfect overlap]
func (s *simState) finishTiming() {
	st := &s.stats
	st.RequestedBytes = st.Loads * 4
	st.L2Bytes = st.Transactions * int64(s.opts.CoalesceBytes)
	st.L2Hits = s.l2.hits
	st.L2Misses = s.l2.misses
	st.DRAMBytes = st.L2Misses * cacheLine

	d := s.dev
	aluCyc := float64(st.ALUOps) / (float64(d.CUs) * float64(d.StreamCoresPerCU()))
	popCyc := float64(st.PopcntOps) / (float64(d.CUs) * d.PopcntPerCU)
	if d.SharedPopcntPipe {
		// Intel EUs execute POPCNT on the same pipes as the rest of the
		// ALU work, so the two serialize instead of overlapping.
		st.ComputeCycles = aluCyc + popCyc
	} else {
		st.ComputeCycles = maxf(aluCyc, popCyc)
	}
	if s.opts.ModelGuardWaste && st.Utilization > 0 {
		st.ComputeCycles /= st.Utilization
	}

	l2Cyc := float64(st.L2Bytes) / d.L2BytesPerCycle
	dramBytesPerCycle := d.DRAMGBs / d.BoostGHz
	dramCyc := float64(st.DRAMBytes) / dramBytesPerCycle
	st.MemoryCycles = maxf(l2Cyc, dramCyc)

	st.Cycles = maxf(st.ComputeCycles, st.MemoryCycles)
	st.ModelSeconds = st.Cycles / (d.BoostGHz * 1e9)
	if st.ModelSeconds > 0 {
		st.ElementsPerSec = st.Elements / st.ModelSeconds
	}
	if st.Cycles > 0 {
		st.ElementsPerCyclePer.CU = st.Elements / st.Cycles / float64(d.CUs)
		st.ElementsPerCyclePer.StreamCore = st.Elements / st.Cycles / float64(d.StreamCores)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
