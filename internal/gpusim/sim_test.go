package gpusim

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"trigene/internal/combin"
	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/sched"
	"trigene/internal/store"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func titan() device.GPU {
	g, err := device.GPUByID("GN1")
	if err != nil {
		panic(err)
	}
	return g
}

func TestTransposedCoalescesBetterThanRowMajor(t *testing.T) {
	mx := randomMatrix(82, 24, 512)
	r := New(titan())
	rm, err := r.Search(encStore(mx), Options{Kernel: K2Split})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.Search(encStore(mx), Options{Kernel: K3Transposed})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Transactions*2 > rm.Stats.Transactions {
		t.Errorf("transposed %d transactions, row-major %d: want at least 2x fewer",
			tr.Stats.Transactions, rm.Stats.Transactions)
	}
	// Same loads and ops: the layouts only change memory behaviour.
	if tr.Stats.Loads != rm.Stats.Loads || tr.Stats.PopcntOps != rm.Stats.PopcntOps {
		t.Error("layout change altered executed operations")
	}
}

func TestSplitReducesOpsAndBytesVsNaive(t *testing.T) {
	mx := randomMatrix(83, 16, 256)
	r := New(titan())
	naive, err := r.Search(encStore(mx), Options{Kernel: K1Naive})
	if err != nil {
		t.Fatal(err)
	}
	split, err := r.Search(encStore(mx), Options{Kernel: K2Split})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~2.1x fewer operations, ~47.5% fewer requested bytes.
	opsRatio := float64(naive.Stats.ALUOps+naive.Stats.PopcntOps) /
		float64(split.Stats.ALUOps+split.Stats.PopcntOps)
	if opsRatio < 1.8 || opsRatio > 2.6 {
		t.Errorf("naive/split ops ratio = %.2f, want ~2.1", opsRatio)
	}
	byteRatio := float64(naive.Stats.RequestedBytes) / float64(split.Stats.RequestedBytes)
	if byteRatio < 1.4 || byteRatio > 2.0 {
		t.Errorf("naive/split requested-byte ratio = %.2f, want ~1.67", byteRatio)
	}
}

func TestModeledPerformanceOrderingV1toV4(t *testing.T) {
	// On the simulated device the paper's headline must hold:
	// V3 (coalesced) is much faster than V2; V4 is at least V3-class;
	// V1 is the slowest of all.
	mx := randomMatrix(84, 32, 1024)
	r := New(titan())
	var secs [5]float64
	for k := K1Naive; k <= K4Tiled; k++ {
		res, err := r.Search(encStore(mx), Options{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		secs[k] = res.Stats.ModelSeconds
		if res.Stats.ModelSeconds <= 0 || res.Stats.ElementsPerSec <= 0 {
			t.Fatalf("%v: timing not populated", k)
		}
	}
	if !(secs[K3Transposed] < secs[K2Split]) {
		t.Errorf("V3 (%.3g s) should beat V2 (%.3g s)", secs[K3Transposed], secs[K2Split])
	}
	if !(secs[K2Split] < secs[K1Naive]) {
		t.Errorf("V2 (%.3g s) should beat V1 (%.3g s)", secs[K2Split], secs[K1Naive])
	}
	if secs[K4Tiled] > secs[K3Transposed]*1.1 {
		t.Errorf("V4 (%.3g s) should be within 10%% of V3 (%.3g s) or better", secs[K4Tiled], secs[K3Transposed])
	}
}

func TestPopcntThroughputDrivesComputeBound(t *testing.T) {
	// With coalesced layouts the kernel is compute bound, so a device
	// with double the POPCNT rate should model ~2x faster per CU.
	mx := randomMatrix(85, 24, 512)
	gn1 := titan() // 32 popcnt/CU
	gn2, err := device.GPUByID("GN2")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(gn1).Search(encStore(mx), Options{Kernel: K4Tiled})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(gn2).Search(encStore(mx), Options{Kernel: K4Tiled})
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.Stats.ElementsPerCyclePer.CU / b.Stats.ElementsPerCyclePer.CU
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("GN1/GN2 per-CU per-cycle ratio = %.2f, want ~2 (32 vs 16 popcnt/CU)", ratio)
	}
}

func TestStatsAccounting(t *testing.T) {
	mx := randomMatrix(86, 8, 128)
	r := New(titan())
	res, err := r.Search(encStore(mx), Options{Kernel: K3Transposed})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.RequestedBytes != st.Loads*4 {
		t.Error("requested bytes != loads*4")
	}
	if st.L2Bytes != st.Transactions*32 {
		t.Error("L2 bytes != transactions*segment")
	}
	if st.DRAMBytes != st.L2Misses*cacheLine {
		t.Error("DRAM bytes != misses*line")
	}
	if st.L2Hits+st.L2Misses == 0 {
		t.Error("no cache accesses recorded")
	}
	if st.Transactions > st.Loads {
		t.Error("coalescing cannot create more transactions than loads")
	}
	if st.Cycles < st.ComputeCycles || st.Cycles < st.MemoryCycles {
		t.Error("total cycles must cover both components")
	}
}

func TestOptionValidation(t *testing.T) {
	mx := randomMatrix(87, 6, 64)
	r := New(titan())
	bad := []Options{
		{Kernel: Kernel(9)},
		{Kernel: K4Tiled, BS: -1},
		{Kernel: K2Split, CoalesceBytes: 33},
		{Kernel: K2Split, CoalesceBytes: 2},
	}
	for i, o := range bad {
		if _, err := r.Search(encStore(mx), o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
	if _, err := r.Search(encStore(randomMatrix(88, 2, 10)), Options{}); err == nil {
		t.Error("2-SNP dataset accepted")
	}
	// Degenerate datasets are rejected when the store is built, before
	// any engine sees them.
	oneClass := dataset.NewMatrix(5, 10)
	if _, err := store.New(oneClass); err == nil {
		t.Error("single-class dataset accepted")
	}
}

func TestKernelString(t *testing.T) {
	if K1Naive.String() != "V1" || K4Tiled.String() != "V4" || K5Fused.String() != "V4F" {
		t.Error("kernel names wrong")
	}
	if Kernel(7).String() == "" {
		t.Error("unknown kernel should render")
	}
}

func TestCacheModel(t *testing.T) {
	c := newLRUCache(4096, 2) // 16 sets x 2 ways x 128B
	if !c.access(0) == false && c.access(0) {
		t.Fatal("first access should miss, second hit")
	}
	c.reset()
	if c.hits != 0 || c.misses != 0 {
		t.Error("reset did not clear counters")
	}
	// Fill one set beyond associativity: addresses mapping to set 0.
	c.access(0)
	c.access(16 * 128) // same set, way 2
	c.access(32 * 128) // evicts addr 0
	if c.access(0) {
		t.Error("evicted line reported as hit")
	}
	if got := c.String(); got == "" {
		t.Error("String empty")
	}
}

func TestCacheDegenerateSizes(t *testing.T) {
	c := newLRUCache(64, 0) // smaller than a line, zero ways
	c.access(0)
	c.access(128)
	if c.misses == 0 {
		t.Error("tiny cache should miss")
	}
}

func TestSchedulingUtilization(t *testing.T) {
	mx := randomMatrix(90, 40, 128)
	r := New(titan())
	// With BSched equal to M there is a single block triple and the
	// cube holds M^3 slots: utilization = C(M,3)/M^3 ~ 1/6.
	res, err := r.Search(encStore(mx), Options{Kernel: K4Tiled, BSched: 40})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.ActiveThreads != st.Combinations {
		t.Errorf("active threads %d != combinations %d", st.ActiveThreads, st.Combinations)
	}
	if st.ScheduledThreads != 40*40*40 {
		t.Errorf("scheduled threads %d, want 64000", st.ScheduledThreads)
	}
	if st.Utilization < 0.12 || st.Utilization > 0.20 {
		t.Errorf("utilization %.3f, want ~1/6", st.Utilization)
	}
	// Smaller scheduling blocks waste fewer guard slots.
	fine, err := r.Search(encStore(mx), Options{Kernel: K4Tiled, BSched: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Stats.Utilization <= st.Utilization {
		t.Errorf("BSched=8 utilization %.3f should beat BSched=40's %.3f",
			fine.Stats.Utilization, st.Utilization)
	}
}

func TestModelGuardWasteInflatesCycles(t *testing.T) {
	mx := randomMatrix(91, 24, 256)
	r := New(titan())
	plain, err := r.Search(encStore(mx), Options{Kernel: K4Tiled, BSched: 24})
	if err != nil {
		t.Fatal(err)
	}
	wasted, err := r.Search(encStore(mx), Options{Kernel: K4Tiled, BSched: 24, ModelGuardWaste: true})
	if err != nil {
		t.Fatal(err)
	}
	if wasted.Stats.ComputeCycles <= plain.Stats.ComputeCycles {
		t.Error("guard-waste modeling should inflate compute cycles")
	}
	// Functional results are unaffected.
	if wasted.Best != plain.Best {
		t.Error("guard-waste modeling changed results")
	}
	if _, err := r.Search(encStore(mx), Options{BSched: -2}); err == nil {
		t.Error("negative BSched accepted")
	}
}

// TestCancelObservedWithinOneTile: cancellation mid-tile is observed
// between warp batches, so even a single tile covering the whole space
// (a device claim on a shared cursor can be that large) returns
// promptly and never reports the tile finished.
func TestCancelObservedWithinOneTile(t *testing.T) {
	mx := randomMatrix(7, 40, 256)
	total := combin.Triples(40)
	cur := sched.NewCursor(sched.NewSource(0, total, total)) // one tile = the space
	var finished atomic.Int64
	cur.OnProgress(total, func(done, _ int64) { finished.Store(done) })

	ctx, cancel := context.WithCancel(context.Background())
	_, err := New(titan()).Search(encStore(mx), Options{
		Tiles:   cur,
		Context: ctx,
		// Started fires right after the first (whole-space) claim, so
		// the cancellation lands strictly mid-tile.
		Started: cancel,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if finished.Load() != 0 {
		t.Errorf("cancelled search finished %d items of its tile", finished.Load())
	}
}

// TestCancelBeforeStart: an already-cancelled context stops the search
// before any tile is claimed.
func TestCancelBeforeStart(t *testing.T) {
	mx := randomMatrix(8, 16, 128)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(titan()).Search(encStore(mx), Options{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
