package store

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trigene/internal/dataset"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.tpack")

// goldenMatrix is the fixed dataset behind testdata/golden.tpack.
func goldenMatrix(t testing.TB) *dataset.Matrix {
	return genMatrix(t, 23, 117, 42)
}

// TestGoldenPack pins the on-disk format: the pack bytes of a fixed
// dataset must match the committed golden file byte for byte, so any
// codec change that silently alters the format (offsets, ordering,
// endianness) fails here until the version is bumped deliberately.
func TestGoldenPack(t *testing.T) {
	st, err := New(goldenMatrix(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WritePack(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.tpack")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("pack bytes differ from golden file (%d vs %d bytes); the format changed without a version bump", buf.Len(), len(want))
	}
	// And the golden file round-trips into an identical dataset.
	loaded, err := ReadPack(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != st.Hash() {
		t.Fatalf("golden hash %s != source hash %s", loaded.Hash(), st.Hash())
	}
}

func packBytes(t testing.TB, mx *dataset.Matrix) []byte {
	t.Helper()
	st, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WritePack(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPackRoundTrip(t *testing.T) {
	for _, dims := range []struct{ m, n int }{
		{5, 9},    // ragged tails in every section
		{16, 64},  // word-aligned everywhere
		{31, 257}, // multi-word planes with tails
	} {
		mx := genMatrix(t, dims.m, dims.n, int64(dims.m*1000+dims.n))
		raw := packBytes(t, mx)
		st, err := ReadPack(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%dx%d: %v", dims.m, dims.n, err)
		}
		got := st.Matrix()
		for i := 0; i < mx.SNPs(); i++ {
			for j := 0; j < mx.Samples(); j++ {
				if mx.Geno(i, j) != got.Geno(i, j) {
					t.Fatalf("%dx%d: genotype (%d,%d) differs", dims.m, dims.n, i, j)
				}
			}
		}
		for j := 0; j < mx.Samples(); j++ {
			if mx.Phen(j) != got.Phen(j) {
				t.Fatalf("%dx%d: phenotype %d differs", dims.m, dims.n, j)
			}
		}
		// The adopted encodings must equal fresh ones, and must not count
		// as builds.
		ref := dataset.SplitBinarize(mx)
		sp := st.Split()
		for c := 0; c < 2; c++ {
			for i := 0; i < mx.SNPs(); i++ {
				for g := 0; g < 2; g++ {
					a, b := sp.Plane(c, i, g), ref.Plane(c, i, g)
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("%dx%d: split plane differs", dims.m, dims.n)
						}
					}
				}
			}
		}
		if b := st.Builds(); b.Binarized != 0 || b.Split != 0 {
			t.Fatalf("%dx%d: pack load counted as build: %+v", dims.m, dims.n, b)
		}
	}
}

func TestOpenMmap(t *testing.T) {
	mx := genMatrix(t, 19, 211, 8)
	raw := packBytes(t, mx)
	path := filepath.Join(t.TempDir(), "d.tpack")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// On unix little-endian hosts (the CI platform) the pack must map.
	if !st.Mapped() {
		t.Log("pack not mapped; heap fallback in use on this platform")
	}
	ref, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash() != ref.Hash() {
		t.Fatalf("hash %s != %s", st.Hash(), ref.Hash())
	}
	bin, binRef := st.Binarized(), ref.Binarized()
	for i := 0; i < mx.SNPs(); i++ {
		for g := 0; g < 3; g++ {
			a, b := bin.Plane(i, g), binRef.Plane(i, g)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("mapped plane (%d,%d) differs", i, g)
				}
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Mapped() {
		t.Fatal("still mapped after Close")
	}
	if err := st.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestReadPackErrors asserts the codec's error text for each way a
// pack can be broken, so operators can tell truncation from corruption
// from version skew.
func TestReadPackErrors(t *testing.T) {
	good := packBytes(t, genMatrix(t, 9, 40, 9))
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated pack"},
		{"short header", good[:40], "truncated pack"},
		{"truncated body", good[:len(good)-16], "header says"},
		{"bad magic", mut(func(b []byte) { copy(b, "NOPE") }), "bad magic"},
		{"wrong version", mut(func(b []byte) { binary.LittleEndian.PutUint16(b[4:], 9) }), "unsupported pack version 9"},
		{"wrong hash", mut(func(b []byte) { b[33] ^= 0xFF }), "content hash mismatch"},
		{"corrupt section", mut(func(b []byte) {
			// Flip one bit in a split-plane word; the per-section CRC
			// catches it even though the content hash (geno+phen only)
			// still matches.
			off := binary.LittleEndian.Uint64(b[packHeaderSize+(secSplit0-1)*sectionEntrySize+8:])
			b[off] ^= 1
		}), "checksum mismatch"},
		{"corrupt genotypes", mut(func(b []byte) {
			// Flip a genotype byte to the invalid 2-bit code 3, with a
			// recomputed section CRC so the semantic check is reached.
			off := binary.LittleEndian.Uint64(b[packHeaderSize+8:])
			ln := binary.LittleEndian.Uint64(b[packHeaderSize+16:])
			b[off] = 0xFF
			sum := crc32.Checksum(b[off:off+ln], crc32.MakeTable(crc32.Castagnoli))
			binary.LittleEndian.PutUint32(b[packHeaderSize+4:], sum)
		}), "invalid packed genotype"},
		{"class counts", mut(func(b []byte) { binary.LittleEndian.PutUint32(b[24:], 0); binary.LittleEndian.PutUint32(b[28:], 40) }), "degenerate dataset"},
		{"section out of bounds", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[packHeaderSize+16:], 1<<40)
		}), "out of bounds"},
	}
	for _, tc := range cases {
		_, err := ReadPack(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// FuzzReadPack drives the pack loader with arbitrary bytes: it must
// reject or accept without panicking, and anything it accepts must
// behave like a dataset (consistent dimensions, usable encodings).
func FuzzReadPack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TPK1"))
	mx, err := dataset.Generate(dataset.GenConfig{SNPs: 6, Samples: 18, Seed: 11})
	if err != nil {
		f.Fatal(err)
	}
	st, err := New(mx)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WritePack(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadPack(bytes.NewReader(data))
		if err != nil {
			return
		}
		if st.SNPs() <= 0 || st.Samples() <= 0 {
			t.Fatalf("accepted pack with dimensions %dx%d", st.SNPs(), st.Samples())
		}
		c0, c1 := st.ClassCounts()
		if c0+c1 != st.Samples() || c0 <= 0 || c1 <= 0 {
			t.Fatalf("accepted pack with class counts %d+%d of %d", c0, c1, st.Samples())
		}
		// The adopted encodings and the lazily decoded matrix must be
		// internally consistent without panicking.
		if got := st.Matrix(); got.SNPs() != st.SNPs() || got.Samples() != st.Samples() {
			t.Fatal("matrix dimensions disagree with header")
		}
		if err := st.Matrix().Validate(); err != nil {
			t.Fatalf("accepted pack decodes an invalid matrix: %v", err)
		}
		st.Split()
		st.Binarized()
	})
}
