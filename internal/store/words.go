package store

import (
	"encoding/binary"
	"unsafe"
)

// hostLittleEndian reports whether the host stores words little
// endian, in which case pack sections can be viewed as []uint64
// without copying.
func hostLittleEndian() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}

// alignedBuffer returns a byte slice of the given length whose backing
// array is 8-byte aligned, so little-endian word sections inside it
// can be reinterpreted as []uint64 without copying.
func alignedBuffer(size int) []byte {
	if size == 0 {
		return nil
	}
	words := make([]uint64, (size+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
}

// leWords views a little-endian word section as []uint64. The input
// length must be a multiple of 8. On little-endian hosts with an
// aligned base this is a zero-copy reinterpretation (the mmap fast
// path); otherwise the words are decoded into a fresh slice.
func leWords(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian() && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// wordsLEBytes serializes words as little-endian bytes. On
// little-endian hosts it is a zero-copy view of the input.
func wordsLEBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	if hostLittleEndian() {
		return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)
	}
	out := make([]byte, len(w)*8)
	for i, x := range w {
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}
