package store

import "trigene/internal/obs"

// storeMetrics is the Store's resolved series; zero value is a no-op.
type storeMetrics struct {
	builds map[string]*obs.Counter
}

// Instrument registers the store's metrics on reg and starts
// recording. Build counts accumulated before Instrument are credited
// immediately, so the exported counters always equal Builds()
// regardless of when the registry is attached. Pack-loaded stores
// increment trigene_store_pack_loads_total once, labeled by whether
// the encodings alias an mmap region or were decoded onto the heap.
// Safe to call with a nil registry (a no-op).
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.om.builds != nil {
		return // already instrumented
	}
	const help = "Representations built from scratch, by encoding."
	s.om.builds = map[string]*obs.Counter{
		"binarized":   reg.Counter("trigene_store_builds_total", help, obs.L("repr", "binarized")),
		"split":       reg.Counter("trigene_store_builds_total", help, obs.L("repr", "split")),
		"naive32":     reg.Counter("trigene_store_builds_total", help, obs.L("repr", "naive32")),
		"words32":     reg.Counter("trigene_store_builds_total", help, obs.L("repr", "words32")),
		"classplanes": reg.Counter("trigene_store_builds_total", help, obs.L("repr", "classplanes")),
		"matrix":      reg.Counter("trigene_store_builds_total", help, obs.L("repr", "matrix")),
	}
	s.om.builds["binarized"].Add(int64(s.builds.Binarized))
	s.om.builds["split"].Add(int64(s.builds.Split))
	s.om.builds["naive32"].Add(int64(s.builds.Naive32))
	s.om.builds["words32"].Add(int64(s.builds.Words32))
	s.om.builds["classplanes"].Add(int64(s.builds.ClassPlanes))
	s.om.builds["matrix"].Add(int64(s.builds.Matrix))

	loads := "Stores adopted from a .tpack, by load mode."
	mmapLoads := reg.Counter("trigene_store_pack_loads_total", loads, obs.L("mode", "mmap"))
	heapLoads := reg.Counter("trigene_store_pack_loads_total", loads, obs.L("mode", "heap"))
	switch {
	case s.mapped != nil:
		mmapLoads.Inc()
	case s.fromPack:
		heapLoads.Inc()
	}
}

// countBuild bumps the exported counter for one representation (the
// internal Builds struct is updated by the caller; both run under
// s.mu).
func (s *Store) countBuild(repr string) {
	if s.om.builds == nil {
		return
	}
	s.om.builds[repr].Inc()
}
