//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; Open falls back to reading
// the pack into the heap.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap unsupported on this platform")
}

// munmapBytes matches the unix signature; nothing is ever mapped here.
func munmapBytes(b []byte) error { return nil }
