package store

import (
	"sync"
	"testing"

	"trigene/internal/dataset"
)

func genMatrix(t testing.TB, m, n int, seed int64) *dataset.Matrix {
	t.Helper()
	mx, err := dataset.Generate(dataset.GenConfig{SNPs: m, Samples: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

func TestNewValidates(t *testing.T) {
	if _, err := New(dataset.NewMatrix(5, 10)); err == nil {
		t.Fatal("single-class matrix accepted")
	}
}

func TestNewBuildsNothing(t *testing.T) {
	st, err := New(genMatrix(t, 20, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if b := st.Builds(); b != (Builds{}) {
		t.Fatalf("fresh store already built something: %+v", b)
	}
}

func TestEachEncodingBuiltOnce(t *testing.T) {
	st, err := New(genMatrix(t, 20, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st.Binarized()
		st.Split()
		st.Naive32()
		st.ClassPlanes()
		st.Words32(dataset.LayoutRowMajor, 0)
		st.Words32(dataset.LayoutTransposed, 0)
		st.Words32(dataset.LayoutTiled, 32)
		st.Words32(dataset.LayoutTiled, 64)
	}
	want := Builds{Binarized: 1, Split: 1, Naive32: 1, ClassPlanes: 1, Words32: 4}
	if b := st.Builds(); b != want {
		t.Fatalf("builds = %+v, want %+v", b, want)
	}
	// Identity: repeated requests return the same memoized object.
	if st.Split() != st.Split() || st.Binarized() != st.Binarized() {
		t.Fatal("memoized encodings are not identical objects")
	}
	if st.Words32(dataset.LayoutTiled, 32) == st.Words32(dataset.LayoutTiled, 64) {
		t.Fatal("distinct tile widths share one Words32")
	}
}

func TestWords32IgnoresBSForUntiled(t *testing.T) {
	st, err := New(genMatrix(t, 10, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Words32(dataset.LayoutRowMajor, 16) != st.Words32(dataset.LayoutRowMajor, 32) {
		t.Fatal("BS should not key untiled layouts")
	}
	if b := st.Builds().Words32; b != 1 {
		t.Fatalf("Words32 builds = %d, want 1", b)
	}
}

func TestEncodingsMatchDirectConstruction(t *testing.T) {
	mx := genMatrix(t, 17, 130, 4)
	st, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	bin, ref := st.Binarized(), dataset.Binarize(mx)
	for i := 0; i < mx.SNPs(); i++ {
		for g := 0; g < 3; g++ {
			a, b := bin.Plane(i, g), ref.Plane(i, g)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("binarized plane (%d,%d) word %d differs", i, g, k)
				}
			}
		}
	}
	sp, spRef := st.Split(), dataset.SplitBinarize(mx)
	for c := 0; c < 2; c++ {
		for i := 0; i < mx.SNPs(); i++ {
			for g := 0; g < 2; g++ {
				a, b := sp.Plane(c, i, g), spRef.Plane(c, i, g)
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("split plane (%d,%d,%d) word %d differs", c, i, g, k)
					}
				}
			}
		}
	}
}

func TestHashStableAcrossRepresentations(t *testing.T) {
	mx := genMatrix(t, 12, 90, 5)
	st1, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	// A second store over an identical matrix hashes identically.
	mx2 := genMatrix(t, 12, 90, 5)
	st2, err := New(mx2)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hash() != st2.Hash() {
		t.Fatalf("identical matrices hash differently: %s vs %s", st1.Hash(), st2.Hash())
	}
	// A different matrix hashes differently.
	st3, err := New(genMatrix(t, 12, 90, 6))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hash() == st3.Hash() {
		t.Fatal("different matrices share a hash")
	}
	if len(st1.Hash()) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", st1.Hash())
	}
}

func TestConcurrentAccessBuildsOnce(t *testing.T) {
	st, err := New(genMatrix(t, 24, 128, 7))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.Binarized()
			st.Split()
			st.Words32(dataset.LayoutTiled, 32)
			st.Hash()
		}()
	}
	wg.Wait()
	want := Builds{Binarized: 1, Split: 1, Words32: 1}
	if b := st.Builds(); b != want {
		t.Fatalf("concurrent builds = %+v, want %+v", b, want)
	}
}
