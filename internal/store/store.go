// Package store is the unified encoded-dataset store: one immutable,
// content-addressed handle per dataset that lazily builds and memoizes
// every bit-plane representation the execution layers consume — the
// naive three-plane Binarized form (approach V1), the phenotype-split
// form (V2 and later), the 32-bit GPU word layouts (one per
// layout/tile-width pair), the per-class three-plane baseline form —
// exactly once, no matter how many searches, backends or devices share
// the Store.
//
// A Store also has a versioned packed on-disk format (.tpack): a
// magic/version header, the SHA-256 content hash of the source matrix,
// and the little-endian word planes of the two hot encodings. Open
// maps a .tpack with mmap where the platform allows it (a portable
// read-into-heap fallback covers the rest), so a worker or CLI starts
// searching in milliseconds instead of re-parsing and re-binarizing
// the dataset. The content hash is the Store's identity: caches (the
// cluster worker's Session cache, on-disk pack caches) key on it, and
// a pack round-trip preserves it bit for bit.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"trigene/internal/bitvec"
	"trigene/internal/dataset"
)

// Builds counts how many times each representation was constructed
// from scratch over a Store's lifetime. Representations adopted from a
// loaded pack are not builds. Tests assert the build-once guarantee on
// these counters.
type Builds struct {
	Binarized   int
	Split       int
	Naive32     int
	Words32     int // total across (layout, BS) keys
	ClassPlanes int
	Matrix      int // lazy matrix decodes on pack-loaded stores
}

// words32Key identifies one GPU word-layout encoding.
type words32Key struct {
	layout dataset.Layout
	bs     int
}

// Store memoizes every encoding of one dataset. It is safe for
// concurrent use; each representation is built at most once (builds
// run under the Store's lock, so concurrent requesters wait for the
// first build instead of duplicating it).
type Store struct {
	m, n            int
	controls, cases int

	mu sync.Mutex

	// mx is the raw matrix; nil on pack-loaded stores until something
	// (a permutation test, a re-pack) actually needs the genotypes.
	mx *dataset.Matrix

	// hash is the hex SHA-256 content hash; computed lazily on
	// matrix-built stores, verified and adopted on pack loads.
	hash string

	// packedGeno/packedPhen are the canonical packed sections (2-bit
	// genotypes, 1-bit phenotypes), lazily built from mx or aliased
	// into a loaded pack.
	packedGeno []byte
	packedPhen []byte

	bin         *dataset.Binarized
	split       *dataset.Split
	naive32     *dataset.Naive32
	classPlanes *dataset.ClassPlanes
	words32     map[words32Key]*dataset.Words32

	builds Builds
	om     storeMetrics // exported mirror of builds; see Instrument

	// encodeSeconds accumulates the wall time of from-scratch encoding
	// builds (outermost build only: a build that triggers a nested one,
	// like Binarize decoding the matrix first, counts once). Sessions
	// read the delta across a search as the "encode" trace span.
	encodeSeconds float64
	buildDepth    int

	// mapped is the mmap region backing a pack-loaded store (nil when
	// heap-backed); Close releases it.
	mapped []byte

	// fromPack marks stores adopted from a .tpack (heap or mmap), for
	// the pack-load metrics.
	fromPack bool
}

// New validates the matrix and returns a Store over it. No encoding is
// built yet; each is constructed on first request.
func New(mx *dataset.Matrix) (*Store, error) {
	if err := mx.Validate(); err != nil {
		return nil, err
	}
	controls, cases := mx.ClassCounts()
	return &Store{
		m: mx.SNPs(), n: mx.Samples(),
		controls: controls, cases: cases,
		mx:      mx,
		words32: make(map[words32Key]*dataset.Words32),
	}, nil
}

// SNPs returns the dataset's SNP count M.
func (s *Store) SNPs() int { return s.m }

// Samples returns the dataset's sample count N.
func (s *Store) Samples() int { return s.n }

// ClassCounts returns the number of controls and cases.
func (s *Store) ClassCounts() (controls, cases int) { return s.controls, s.cases }

// Builds snapshots the per-representation build counters.
func (s *Store) Builds() Builds {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds
}

// EncodeSeconds returns the cumulative wall time spent building
// encodings from scratch over the Store's lifetime. Pack-adopted
// representations cost nothing here; a traced search reports the delta
// across the call as its "encode" span.
func (s *Store) EncodeSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encodeSeconds
}

// timedBuildLocked runs one from-scratch representation build and
// charges its wall time to encodeSeconds. Only the outermost build of
// a nested chain records (the inner time is already inside the outer
// measurement).
func (s *Store) timedBuildLocked(build func()) {
	s.buildDepth++
	start := time.Now()
	build()
	d := time.Since(start)
	s.buildDepth--
	if s.buildDepth == 0 {
		s.encodeSeconds += d.Seconds()
	}
}

// Mapped reports whether the store's encodings alias an mmap'd pack.
func (s *Store) Mapped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mapped != nil
}

// Close releases the mmap region of a pack-mapped store. The Store and
// every representation obtained from it must not be used afterwards.
// Heap-backed stores need no Close; calling it is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mapped == nil {
		return nil
	}
	m := s.mapped
	s.mapped = nil
	s.bin, s.split, s.naive32, s.classPlanes = nil, nil, nil, nil
	s.words32 = make(map[words32Key]*dataset.Words32)
	s.packedGeno, s.packedPhen = nil, nil
	return munmapBytes(m)
}

// Hash returns the hex SHA-256 content hash identifying the dataset:
// the digest of the canonical packed genotype and phenotype sections.
// Identical matrices hash identically regardless of the input format
// they were parsed from.
func (s *Store) Hash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hashLocked()
}

func (s *Store) hashLocked() string {
	if s.hash == "" {
		s.ensurePackedLocked()
		s.hash = contentHash(s.m, s.n, s.packedGeno, s.packedPhen)
	}
	return s.hash
}

// contentHash computes the canonical dataset digest.
func contentHash(m, n int, geno, phen []byte) string {
	h := sha256.New()
	var hdr [16]byte
	copy(hdr[:8], "tpack\x00v1")
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(n))
	h.Write(hdr[:])
	h.Write(geno)
	h.Write(phen)
	return hex.EncodeToString(h.Sum(nil))
}

// ensurePackedLocked materializes the canonical packed sections.
func (s *Store) ensurePackedLocked() {
	if s.packedGeno != nil {
		return
	}
	mx := s.matrixLocked()
	geno := make([]byte, (s.m*s.n+3)/4)
	idx := 0
	for i := 0; i < s.m; i++ {
		for _, g := range mx.Row(i) {
			geno[idx/4] |= g << (uint(idx%4) * 2)
			idx++
		}
	}
	phen := make([]byte, (s.n+7)/8)
	for j := 0; j < s.n; j++ {
		phen[j/8] |= mx.Phen(j) << (uint(j) % 8)
	}
	s.packedGeno, s.packedPhen = geno, phen
}

// Matrix returns the raw genotype matrix, decoding it from the packed
// sections on pack-loaded stores (most searches never need it: the
// engines consume the plane encodings directly).
func (s *Store) Matrix() *dataset.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.matrixLocked()
}

func (s *Store) matrixLocked() *dataset.Matrix {
	if s.mx == nil {
		s.builds.Matrix++
		s.countBuild("matrix")
		s.timedBuildLocked(func() {
			mx := dataset.NewMatrix(s.m, s.n)
			for i := 0; i < s.m; i++ {
				row := mx.Row(i)
				base := i * s.n
				for j := range row {
					idx := base + j
					row[j] = s.packedGeno[idx/4] >> (uint(idx%4) * 2) & 3
				}
			}
			for j := 0; j < s.n; j++ {
				if s.packedPhen[j/8]>>(uint(j)%8)&1 != 0 {
					mx.SetPhen(j, dataset.Case)
				}
			}
			s.mx = mx
		})
	}
	return s.mx
}

// Binarized returns the naive three-plane form (approach V1), building
// it on first request.
func (s *Store) Binarized() *dataset.Binarized {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.binarizedLocked()
}

func (s *Store) binarizedLocked() *dataset.Binarized {
	if s.bin == nil {
		s.builds.Binarized++
		s.countBuild("binarized")
		s.timedBuildLocked(func() { s.bin = dataset.Binarize(s.matrixLocked()) })
	}
	return s.bin
}

// Split returns the phenotype-split two-plane form (approaches V2 and
// later), building it on first request.
func (s *Store) Split() *dataset.Split {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.splitLocked()
}

func (s *Store) splitLocked() *dataset.Split {
	if s.split == nil {
		s.builds.Split++
		s.countBuild("split")
		s.timedBuildLocked(func() { s.split = dataset.SplitBinarize(s.matrixLocked()) })
	}
	return s.split
}

// Naive32 returns the 32-bit naive form the GPU V1 kernel consumes.
func (s *Store) Naive32() *dataset.Naive32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.naive32 == nil {
		s.builds.Naive32++
		s.countBuild("naive32")
		s.timedBuildLocked(func() { s.naive32 = dataset.BuildNaive32(s.binarizedLocked()) })
	}
	return s.naive32
}

// Words32 returns the 32-bit phenotype-split form in the given GPU
// layout (bs is the SNP tile width, tiled layout only), building and
// memoizing one encoding per distinct (layout, bs) pair.
func (s *Store) Words32(layout dataset.Layout, bs int) *dataset.Words32 {
	if layout != dataset.LayoutTiled {
		bs = 0
	}
	key := words32Key{layout: layout, bs: bs}
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.words32[key]
	if !ok {
		s.builds.Words32++
		s.countBuild("words32")
		s.timedBuildLocked(func() { w = dataset.BuildWords32(s.splitLocked(), layout, bs) })
		s.words32[key] = w
	}
	return w
}

// ClassPlanes returns the per-class three-plane baseline form.
func (s *Store) ClassPlanes() *dataset.ClassPlanes {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.classPlanes == nil {
		s.builds.ClassPlanes++
		s.countBuild("classplanes")
		s.timedBuildLocked(func() { s.classPlanes = dataset.BuildClassPlanes(s.matrixLocked()) })
	}
	return s.classPlanes
}

// phenVector builds the n-bit phenotype vector from a packed section.
func phenVector(n int, packed []byte) (*bitvec.Vector, error) {
	words := make([]uint64, bitvec.WordsFor(n))
	for k := range words {
		var w uint64
		for b := 0; b < 8; b++ {
			if k*8+b < len(packed) {
				w |= uint64(packed[k*8+b]) << (8 * b)
			}
		}
		words[k] = w
	}
	if mask := bitvec.TailMask(n); len(words) > 0 && words[len(words)-1]&^mask != 0 {
		return nil, fmt.Errorf("store: phenotype section has bits beyond sample %d", n)
	}
	return bitvec.FromWords(n, words), nil
}

// popcountBytes counts set bits across a byte slice.
func popcountBytes(b []byte) int {
	c := 0
	for _, x := range b {
		c += bits.OnesCount8(x)
	}
	return c
}
