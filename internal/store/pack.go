package store

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"trigene/internal/bitvec"
	"trigene/internal/dataset"
)

// The .tpack on-disk format, version 1 (all integers little endian):
//
//	offset  size  field
//	0       4     magic "TPK1"
//	4       2     format version (1)
//	6       2     reserved (0)
//	8       8     total file size in bytes
//	16      4     M (SNPs)
//	20      4     N (samples)
//	24      4     controls
//	28      4     cases
//	32      32    SHA-256 content hash (canonical geno+phen sections)
//	64      4     section count
//	68      4     reserved (0)
//	72      24*k  section table: {u32 id, u32 crc32c, u64 off, u64 len}
//	...           sections, each 8-byte aligned
//
// Sections:
//
//	geno    packed 2-bit genotypes, row-major, (M*N+3)/4 bytes
//	phen    packed 1-bit phenotypes, (N+7)/8 bytes
//	bin     Binarized planes: M*3*WordsFor(N) u64 words
//	split0  Split class-0 planes: M*2*WordsFor(controls) u64 words
//	split1  Split class-1 planes: M*2*WordsFor(cases) u64 words
//
// The content hash covers the geno and phen sections — the dataset's
// format-independent identity, derivable from the matrix alone. The
// plane sections are cached derivations of exactly that content; each
// section additionally carries a CRC32-C in its table entry, verified
// on load, so a corrupted plane (disk bit rot, torn copy) is rejected
// instead of silently changing search results.

// PackMagic is the 4-byte .tpack signature; loaders sniff it to tell
// packed datasets from raw matrix formats.
const PackMagic = "TPK1"

const packVersion = 1

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/
// arm64) used for per-section integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	secGeno = iota + 1
	secPhen
	secBin
	secSplit0
	secSplit1
	numSections = 5
)

const (
	packHeaderSize   = 72
	sectionEntrySize = 24
	tableEnd         = packHeaderSize + numSections*sectionEntrySize
)

// IsPack reports whether the given prefix (≥ 4 bytes) carries the
// .tpack magic.
func IsPack(prefix []byte) bool {
	return len(prefix) >= 4 && string(prefix[:4]) == PackMagic
}

// WritePack serializes the store in the packed on-disk format,
// building (and memoizing) the Binarized and Split encodings if they
// do not exist yet.
func (s *Store) WritePack(w io.Writer) error {
	s.mu.Lock()
	s.ensurePackedLocked()
	geno, phen := s.packedGeno, s.packedPhen
	hash := s.hashLocked()
	bin := s.binarizedLocked()
	split := s.splitLocked()
	s.mu.Unlock()

	var sections [numSections][]byte
	sections[secGeno-1] = geno
	sections[secPhen-1] = phen
	sections[secBin-1] = wordsLEBytes(bin.PlaneData())
	sections[secSplit0-1] = wordsLEBytes(split.ClassPlaneData(dataset.Control))
	sections[secSplit1-1] = wordsLEBytes(split.ClassPlaneData(dataset.Case))

	// Lay the sections out 8-byte aligned after the table.
	offs := make([]uint64, numSections)
	pos := uint64(tableEnd)
	for i, sec := range sections {
		pos = (pos + 7) &^ 7
		offs[i] = pos
		pos += uint64(len(sec))
	}
	total := (pos + 7) &^ 7

	hdr := make([]byte, tableEnd)
	copy(hdr[0:], PackMagic)
	binary.LittleEndian.PutUint16(hdr[4:], packVersion)
	binary.LittleEndian.PutUint64(hdr[8:], total)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(s.m))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(s.n))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(s.controls))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(s.cases))
	if _, err := hex32(hash, hdr[32:64]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[64:], numSections)
	for i := range sections {
		e := hdr[packHeaderSize+i*sectionEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], uint32(i+1))
		binary.LittleEndian.PutUint32(e[4:], crc32.Checksum(sections[i], castagnoli))
		binary.LittleEndian.PutUint64(e[8:], offs[i])
		binary.LittleEndian.PutUint64(e[16:], uint64(len(sections[i])))
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	written := uint64(tableEnd)
	var pad [8]byte
	for i, sec := range sections {
		if offs[i] > written {
			if _, err := bw.Write(pad[:offs[i]-written]); err != nil {
				return err
			}
			written = offs[i]
		}
		if _, err := bw.Write(sec); err != nil {
			return err
		}
		written += uint64(len(sec))
	}
	if total > written {
		if _, err := bw.Write(pad[:total-written]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPack decodes a .tpack from a byte stream into a heap-backed
// Store — the wire path (cluster workers receive pack bytes). Open is
// the file path with mmap. The stream is buffered once; word sections
// are viewed in place when the buffer happens to be 8-byte aligned
// and decode-copied otherwise, so peak memory stays near the pack
// size instead of a multiple of it.
func ReadPack(r io.Reader) (*Store, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading pack: %w", err)
	}
	return parsePack(raw, nil)
}

// Open loads a .tpack file, mapping it into memory where the platform
// supports mmap (the plane encodings then alias the page cache and
// load in milliseconds) and falling back to a read into the heap. Call
// Close on the returned Store when done with a mapped pack.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("store: pack %s too large (%d bytes)", path, size)
	}
	if hostLittleEndian() {
		if data, merr := mmapFile(f, int(size)); merr == nil {
			st, perr := parsePack(data, data)
			if perr != nil {
				munmapBytes(data)
				return nil, fmt.Errorf("store: %s: %w", path, perr)
			}
			return st, nil
		}
	}
	buf := alignedBuffer(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	st, perr := parsePack(buf, nil)
	if perr != nil {
		return nil, fmt.Errorf("store: %s: %w", path, perr)
	}
	return st, nil
}

// parsePack validates a complete pack image and assembles a Store
// whose encodings alias the image (zero copy on little-endian hosts).
// mapped is the mmap region to release on Close, nil for heap images.
func parsePack(data []byte, mapped []byte) (*Store, error) {
	if len(data) < tableEnd {
		return nil, fmt.Errorf("store: truncated pack: %d bytes, need at least %d", len(data), tableEnd)
	}
	if !IsPack(data) {
		return nil, fmt.Errorf("store: bad magic %q (not a .tpack)", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != packVersion {
		return nil, fmt.Errorf("store: unsupported pack version %d (this build reads version %d)", v, packVersion)
	}
	if sz := binary.LittleEndian.Uint64(data[8:]); sz != uint64(len(data)) {
		return nil, fmt.Errorf("store: truncated pack: header says %d bytes, have %d", sz, len(data))
	}
	m := int(binary.LittleEndian.Uint32(data[16:]))
	n := int(binary.LittleEndian.Uint32(data[20:]))
	controls := int(binary.LittleEndian.Uint32(data[24:]))
	cases := int(binary.LittleEndian.Uint32(data[28:]))
	if m <= 0 || n <= 0 || m > 1<<24 || n > 1<<24 {
		return nil, fmt.Errorf("store: unreasonable dimensions %dx%d", m, n)
	}
	if controls < 0 || cases < 0 || controls+cases != n {
		return nil, fmt.Errorf("store: class counts %d+%d do not sum to %d samples", controls, cases, n)
	}
	if controls == 0 || cases == 0 {
		return nil, fmt.Errorf("store: degenerate dataset: %d controls, %d cases", controls, cases)
	}
	if sc := binary.LittleEndian.Uint32(data[64:]); sc != numSections {
		return nil, fmt.Errorf("store: pack has %d sections, want %d", sc, numSections)
	}

	var secs [numSections][]byte
	for i := 0; i < numSections; i++ {
		e := data[packHeaderSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:])
		sum := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		ln := binary.LittleEndian.Uint64(e[16:])
		if id != uint32(i+1) {
			return nil, fmt.Errorf("store: section %d has id %d, want %d", i, id, i+1)
		}
		if off%8 != 0 || off < tableEnd || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fmt.Errorf("store: section %d [%d,+%d) out of bounds", id, off, ln)
		}
		secs[i] = data[off : off+ln]
		if got := crc32.Checksum(secs[i], castagnoli); got != sum {
			return nil, fmt.Errorf("store: section %d checksum mismatch (%08x vs %08x): the pack is corrupted", id, got, sum)
		}
	}

	geno, phen := secs[secGeno-1], secs[secPhen-1]
	if len(geno) != (m*n+3)/4 {
		return nil, fmt.Errorf("store: genotype section holds %d bytes, want %d", len(geno), (m*n+3)/4)
	}
	if len(phen) != (n+7)/8 {
		return nil, fmt.Errorf("store: phenotype section holds %d bytes, want %d", len(phen), (n+7)/8)
	}
	if err := validateGeno(geno, m*n); err != nil {
		return nil, err
	}
	if tail := n % 8; tail != 0 && phen[len(phen)-1]>>uint(tail) != 0 {
		return nil, fmt.Errorf("store: phenotype section has bits beyond sample %d", n)
	}
	if pc := popcountBytes(phen); pc != cases {
		return nil, fmt.Errorf("store: phenotype section has %d cases, header says %d", pc, cases)
	}
	wantHash := hex.EncodeToString(data[32:64])
	if got := contentHash(m, n, geno, phen); got != wantHash {
		return nil, fmt.Errorf("store: content hash mismatch: header names %.12s…, sections hash to %.12s…", wantHash, got)
	}

	binWords, err := sectionWords(secs[secBin-1], m*3*bitvec.WordsFor(n), "bin")
	if err != nil {
		return nil, err
	}
	phenVec, err := phenVector(n, phen)
	if err != nil {
		return nil, err
	}
	bin, err := dataset.BinarizedFromPlanes(m, n, binWords, phenVec)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var splitPlanes [2][]uint64
	counts := [2]int{controls, cases}
	names := [2]string{"split0", "split1"}
	for c := 0; c < 2; c++ {
		splitPlanes[c], err = sectionWords(secs[secSplit0-1+c], m*2*bitvec.WordsFor(counts[c]), names[c])
		if err != nil {
			return nil, err
		}
	}
	split, err := dataset.SplitFromPlanes(m, counts, splitPlanes)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	return &Store{
		m: m, n: n, controls: controls, cases: cases,
		hash:       wantHash,
		packedGeno: geno,
		packedPhen: phen,
		bin:        bin,
		split:      split,
		words32:    make(map[words32Key]*dataset.Words32),
		mapped:     mapped,
		fromPack:   true,
	}, nil
}

// sectionWords views a section as 64-bit words, checking its length.
func sectionWords(sec []byte, wantWords int, name string) ([]uint64, error) {
	if len(sec) != wantWords*8 {
		return nil, fmt.Errorf("store: %s section holds %d bytes, want %d", name, len(sec), wantWords*8)
	}
	return leWords(sec), nil
}

// validateGeno rejects genotype sections carrying the invalid 2-bit
// code 3 or stray bits in the tail beyond the last genotype.
func validateGeno(geno []byte, count int) error {
	full := count / 4
	for i := 0; i < full; i++ {
		if b := geno[i]; (b>>1)&b&0x55 != 0 {
			return fmt.Errorf("store: invalid packed genotype 3 near index %d", i*4)
		}
	}
	if rem := count % 4; rem != 0 {
		b := geno[full]
		if b>>(uint(rem)*2) != 0 {
			return fmt.Errorf("store: genotype section has bits beyond entry %d", count)
		}
		if (b>>1)&b&0x55 != 0 {
			return fmt.Errorf("store: invalid packed genotype 3 near index %d", full*4)
		}
	}
	return nil
}

// hex32 decodes a 64-char hex digest into dst (32 bytes).
func hex32(s string, dst []byte) (int, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 32 {
		return 0, fmt.Errorf("store: malformed content hash %q", s)
	}
	return copy(dst, raw), nil
}
