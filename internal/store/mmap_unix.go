//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The caller releases the mapping
// with munmapBytes.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("store: cannot map %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// munmapBytes releases a mapping created by mmapFile.
func munmapBytes(b []byte) error { return syscall.Munmap(b) }
