module trigene

go 1.22
