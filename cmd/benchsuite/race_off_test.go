//go:build !race

package main

// raceEnabled reports whether the race detector instruments this test
// binary; timing-sensitive gates skip themselves when it does.
const raceEnabled = false
