// benchsuite regenerates every table and figure of the paper's
// evaluation section:
//
//	benchsuite -exp fig2a    # CARM characterization, Ice Lake SP CPU
//	benchsuite -exp fig2b    # CARM characterization, Iris Xe MAX GPU (simulated)
//	benchsuite -exp fig3     # CPU study across Table I devices (modeled)
//	benchsuite -exp fig4     # GPU study across Table II devices (modeled)
//	benchsuite -exp table3   # state-of-the-art comparison (modeled + host-measured)
//	benchsuite -exp overall  # Section V-D whole-device and efficiency comparison
//	benchsuite -exp host     # measured V1-V4 + baseline run on this machine
//	benchsuite -exp snapshot # machine-readable perf snapshot (BENCH_PR1.json)
//	benchsuite -exp sched    # tile-scheduler hot-loop audit (BENCH_PR2.json);
//	                         # exits nonzero if the claim→score loop allocates
//	benchsuite -exp cluster  # loopback tile-leasing cluster scaling audit
//	                         # (BENCH_PR3.json): tiles/sec at 1/2/4 workers
//	benchsuite -exp plan     # autotuning prediction-sanity audit
//	                         # (BENCH_PR4.json): planner-predicted vs measured
//	                         # tiles/sec per backend, plus the chosen grain and
//	                         # split; exits nonzero if a plan is malformed or an
//	                         # autotuned run diverges from the untuned Report
//	benchsuite -exp store    # encoded-dataset store audit (BENCH_PR5.json):
//	                         # cold parse+encode time vs .tpack load time per
//	                         # representation, plus bytes on the wire raw vs
//	                         # packed; exits nonzero if a packed load is not
//	                         # faster than re-encoding or changes any result
//	benchsuite -exp durable  # durable-coordinator audit (BENCH_PR6.json):
//	                         # journal append latency (buffered and fsynced),
//	                         # snapshot size and recovery time vs job count,
//	                         # and the lease-grant throughput of a journaling
//	                         # coordinator vs an in-memory one; exits nonzero
//	                         # if journaling costs more than 10% of the
//	                         # grant rate
//	benchsuite -exp kernels  # fused-kernel audit (BENCH_PR7.json): host-measured
//	                         # G elements/s of the blocked pipelines V3/V3F and
//	                         # V4/V4F at several tile shapes, plus the fused-vs-
//	                         # unfused speedup; exits nonzero if the fused V4F
//	                         # does not beat the unfused V4
//	benchsuite -exp obs      # observability-overhead audit (BENCH_PR8.json):
//	                         # V4F hot-loop tiles/sec with a live metrics
//	                         # registry vs without, time-paired median of
//	                         # ratios, plus the allocations per tile with the
//	                         # registry attached; exits nonzero if metrics
//	                         # cost more than 2% or allocate on the hot path
//	benchsuite -exp screen   # two-stage screened-search audit (BENCH_PR9.json):
//	                         # exhaustive vs screened wall time (time-paired
//	                         # median of ratios), the stage-1/stage-2 split,
//	                         # and the survivor recall of a planted triple;
//	                         # exits nonzero if screening is not at least 3x
//	                         # faster, prunes a planted SNP, misses the
//	                         # planted best, or allocates in the subset
//	                         # hot loop
//	benchsuite -exp perm     # permutation-kernel audit (BENCH_PR10.json):
//	                         # scalar vs bit-plane significance testing
//	                         # (time-paired median of ratios), a batch-size
//	                         # sweep, and a loopback-cluster fan-out check;
//	                         # exits nonzero if the bit-plane kernel is not
//	                         # at least 5x faster, if any p-value diverges
//	                         # from the scalar reference (single-node or
//	                         # cluster-merged), or if the steady-state
//	                         # kernel allocates per permutation
//	benchsuite -exp all      # everything except the audit/snapshot experiments
//
// Cross-device rows are analytical-model projections (this is a
// pure-Go, single-host reproduction — see DESIGN.md); host rows are
// real measurements of this repository's implementations.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"trigene"
	"trigene/internal/carm"
	"trigene/internal/cluster"
	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/energy"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/obs"
	"trigene/internal/perfmodel"
	"trigene/internal/permtest"
	"trigene/internal/report"
	"trigene/internal/sched"
	"trigene/internal/store"
	"trigene/internal/wal"
)

var (
	snpSizes   = []int{2048, 4096, 8192}
	figSamples = 16384
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsuite: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// out receives all experiment output; run sets it before dispatching.
var out io.Writer = os.Stdout

// run is the testable tool body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: fig2a, fig2b, fig3, fig4, table3, overall, energy, host, snapshot, sched, cluster, plan, store, durable, kernels, obs, screen, perm or all")
	hostSNPs := fs.Int("host-snps", 160, "SNP count for the host-measured experiments")
	hostSamples := fs.Int("host-samples", 4096, "sample count for the host-measured experiments")
	snapOut := fs.String("out", "", "output path of the -exp snapshot/sched JSON (defaults: BENCH_PR1.json / BENCH_PR2.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out = stdout

	experiments := map[string]func() error{
		"fig2a":   fig2a,
		"fig2b":   fig2b,
		"fig3":    fig3,
		"fig4":    fig4,
		"table3":  func() error { return table3(*hostSNPs, *hostSamples) },
		"overall": overall,
		"energy":  energyExp,
		"host":    func() error { return host(*hostSNPs, *hostSamples) },
		"snapshot": func() error {
			return snapshot(orDefault(*snapOut, "BENCH_PR1.json"))
		},
		"sched": func() error {
			return schedExp(orDefault(*snapOut, "BENCH_PR2.json"))
		},
		"cluster": func() error {
			return clusterExp(orDefault(*snapOut, "BENCH_PR3.json"))
		},
		"plan": func() error {
			return planExp(orDefault(*snapOut, "BENCH_PR4.json"))
		},
		"store": func() error {
			return storeExp(orDefault(*snapOut, "BENCH_PR5.json"))
		},
		"durable": func() error {
			return durableExp(orDefault(*snapOut, "BENCH_PR6.json"))
		},
		"kernels": func() error {
			return kernelsExp(orDefault(*snapOut, "BENCH_PR7.json"))
		},
		"obs": func() error {
			return obsExp(orDefault(*snapOut, "BENCH_PR8.json"))
		},
		"screen": func() error {
			return screenExp(orDefault(*snapOut, "BENCH_PR9.json"))
		},
		"perm": func() error {
			return permExp(orDefault(*snapOut, "BENCH_PR10.json"))
		},
	}
	order := []string{"fig2a", "fig2b", "fig3", "fig4", "table3", "overall", "energy", "host"}
	if *exp == "all" {
		for _, name := range order {
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err := f(); err != nil {
		return fmt.Errorf("%s: %w", *exp, err)
	}
	return nil
}

func render(t *report.Table) error {
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func fig2a() error {
	ci3, err := device.CPUByID("CI3")
	if err != nil {
		return err
	}
	model := carm.CPUModel(ci3, true)
	fmt.Fprintln(out, "== Figure 2a: CARM characterization on Intel Xeon 8360Y (ICX), modeled ==")
	rt := report.NewTable("roofs", "name", "unit", "value")
	for _, r := range model.Roofs {
		unit := "GINTOPS"
		if r.Kind == carm.Memory {
			unit = "GB/s"
		}
		rt.AddRowf(r.Name, unit, r.Value)
	}
	if err := render(rt); err != nil {
		return err
	}
	points, err := carm.CPUPoints(ci3, true, 2048, figSamples)
	if err != nil {
		return err
	}
	pt := report.NewTable("approaches V1-V4 (2048 SNPs x 16384 samples)",
		"point", "AI intop/B", "GINTOPS", "ceiling GINTOPS")
	for _, p := range points {
		pt.AddRowf(p.Name, p.AI, p.GIntops, model.Attainable(p.AI))
	}
	return render(pt)
}

func fig2b() error {
	gi2, err := device.GPUByID("GI2")
	if err != nil {
		return err
	}
	model := carm.GPUModel(gi2)
	fmt.Fprintln(out, "== Figure 2b: CARM characterization on Intel Iris Xe MAX, simulated ==")
	rt := report.NewTable("roofs", "name", "unit", "value")
	for _, r := range model.Roofs {
		unit := "GINTOPS"
		if r.Kind == carm.Memory {
			unit = "GB/s"
		}
		rt.AddRowf(r.Name, unit, r.Value)
	}
	if err := render(rt); err != nil {
		return err
	}
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 64, Samples: 2048, Seed: 4})
	if err != nil {
		return err
	}
	st, err := store.New(mx)
	if err != nil {
		return err
	}
	runner := gpusim.New(gi2)
	pt := report.NewTable("kernels V1-V4 (simulated on 64 SNPs x 2048 samples)",
		"point", "AI intop/B", "GINTOPS", "G elem/s", "transactions")
	for k := gpusim.K1Naive; k <= gpusim.K4Tiled; k++ {
		res, err := runner.Search(st, gpusim.Options{Kernel: k})
		if err != nil {
			return err
		}
		p := carm.PointFromGPUStats(k.String(), res.Stats)
		pt.AddRowf(p.Name, p.AI, p.GIntops, res.Stats.ElementsPerSec/1e9, res.Stats.Transactions)
	}
	return render(pt)
}

func fig3() error {
	fmt.Fprintln(out, "== Figure 3: CPU performance across Table I devices (modeled), 16384 samples ==")
	type variant struct {
		cpu    device.CPU
		avx512 bool
		label  string
	}
	var variants []variant
	for _, c := range device.AllCPUs() {
		if c.HasAVX512 {
			variants = append(variants, variant{c, true, c.ID + " AVX512"})
		}
		variants = append(variants, variant{c, false, c.ID + " AVX"})
	}
	specs := []struct {
		title string
		f     func(device.CPU, bool, int, int) float64
	}{
		{"(a) Giga elements/s/core", perfmodel.CPUPerCoreGElemPerSec},
		{"(b) elements/cycle/core", perfmodel.CPUPerCyclePerCore},
		{"(c) elements/cycle/(core x vec width)", perfmodel.CPUPerCyclePerCoreVec},
	}
	for _, spec := range specs {
		t := report.NewTable(spec.title, "device", "2048 SNPs", "4096 SNPs", "8192 SNPs")
		for _, v := range variants {
			row := []interface{}{v.label}
			for _, m := range snpSizes {
				row = append(row, spec.f(v.cpu, v.avx512, m, figSamples))
			}
			t.AddRowf(row...)
		}
		if err := render(t); err != nil {
			return err
		}
	}
	return nil
}

func fig4() error {
	fmt.Fprintln(out, "== Figure 4: GPU performance across Table II devices (modeled), 16384 samples ==")
	specs := []struct {
		title string
		f     func(device.GPU, int, int) float64
	}{
		{"(a) Giga elements/s/CU", perfmodel.GPUPerCUGElemPerSec},
		{"(b) elements/cycle/CU", perfmodel.GPUPerCyclePerCU},
		{"(c) elements/cycle/stream core", perfmodel.GPUPerCyclePerStreamCore},
	}
	for _, spec := range specs {
		t := report.NewTable(spec.title, "device", "2048 SNPs", "4096 SNPs", "8192 SNPs")
		for _, g := range device.AllGPUs() {
			row := []interface{}{g.ID + " " + g.Arch}
			for _, m := range snpSizes {
				row = append(row, spec.f(g, m, figSamples))
			}
			t.AddRowf(row...)
		}
		if err := render(t); err != nil {
			return err
		}
	}
	return nil
}

func table3(hostSNPs, hostSamples int) error {
	fmt.Fprintln(out, "== Table III: comparison with state-of-the-art (modeled projection) ==")
	rows, err := perfmodel.Table3()
	if err != nil {
		return err
	}
	t := report.NewTable("SoA throughput as measured by the paper; ours modeled",
		"SoA work", "SNPs", "samples", "device", "SoA G elem/s", "ours G elem/s", "speedup", "paper")
	for _, r := range rows {
		soa := "N/A"
		if r.SoAGElems > 0 {
			soa = report.FormatFloat(r.SoAGElems)
		}
		paper := "N/A"
		if r.PaperSpeedup > 0 {
			paper = report.Speedup(r.PaperSpeedup)
		}
		t.AddRowf(r.Work, r.SNPs, r.Samples, r.DeviceID, soa, r.OursGElems, report.Speedup(r.Speedup), paper)
	}
	if err := render(t); err != nil {
		return err
	}

	fmt.Fprintln(out, "host-measured cross-check: MPI3SNP-style baseline vs this work's V4")
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: hostSNPs, Samples: hostSamples, Seed: 5})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	base, err := sess.Search(ctx, trigene.WithBackend(trigene.Baseline()))
	if err != nil {
		return err
	}
	ours, err := sess.Search(ctx)
	if err != nil {
		return err
	}
	ht := report.NewTable("", "implementation", "G elem/s", "duration", "speedup")
	ht.AddRowf("MPI3SNP-style baseline", base.ElementsPerSec/1e9,
		base.Duration.Round(time.Millisecond).String(), report.Speedup(1))
	ht.AddRowf("this work V4", ours.ElementsPerSec/1e9,
		ours.Duration.Round(time.Millisecond).String(),
		report.Speedup(ours.ElementsPerSec/base.ElementsPerSec))
	return render(ht)
}

func overall() error {
	fmt.Fprintln(out, "== Section V-D: whole-device comparison at 8192 SNPs x 16384 samples (modeled) ==")
	t := report.NewTable("", "device", "name", "G elem/s", "TDP W", "G elem/J")
	for _, r := range perfmodel.Overall(8192, figSamples) {
		t.AddRowf(r.DeviceID, r.Name, r.GElems, r.TDP, r.GElemsPerJoule)
	}
	if err := render(t); err != nil {
		return err
	}
	ci3, err := device.CPUByID("CI3")
	if err != nil {
		return err
	}
	gn1, err := device.GPUByID("GN1")
	if err != nil {
		return err
	}
	hetero := perfmodel.CPUOverallGElemPerSec(ci3, true, 8192, figSamples) +
		perfmodel.GPUOverallGElemPerSec(gn1, 8192, figSamples)
	fmt.Fprintf(out, "heterogeneous CI3+GN1 estimate: %.0f G elements/s (paper: ~3300)\n\n", hetero)
	return nil
}

func host(snps, samples int) error {
	fmt.Fprintf(out, "== Host-measured approach study (%d SNPs x %d samples) ==\n", snps, samples)
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snps, Samples: samples, Seed: 6})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	t := report.NewTable("", "approach", "duration", "G elem/s", "speedup vs V1")
	var v1 float64
	for a := trigene.V1Naive; a <= trigene.V4Vector; a++ {
		rep, err := sess.Search(ctx, trigene.WithApproach(a))
		if err != nil {
			return err
		}
		if a == trigene.V1Naive {
			v1 = rep.ElementsPerSec
		}
		t.AddRowf(rep.Approach, rep.Duration.Round(time.Millisecond).String(),
			rep.ElementsPerSec/1e9, report.Speedup(rep.ElementsPerSec/v1))
	}
	return render(t)
}

// Snapshot parameters are fixed so successive BENCH_PR*.json files are
// comparable across PRs: same synthetic dataset, every approach.
const (
	snapSNPs    = 64
	snapSamples = 2048
	snapSeed    = 17
)

// benchPoint is one measured configuration in the snapshot.
type benchPoint struct {
	Backend      string  `json:"backend"`
	Approach     string  `json:"approach"`
	Combinations int64   `json:"combinations"`
	DurationMs   float64 `json:"durationMs"`
	CombosPerSec float64 `json:"combosPerSec"`
	GElemsPerSec float64 `json:"gigaElementsPerSec"`
}

// benchSnapshot is the machine-readable perf trajectory record.
type benchSnapshot struct {
	Schema     string       `json:"schema"`
	SNPs       int          `json:"snps"`
	Samples    int          `json:"samples"`
	Seed       int64        `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Points     []benchPoint `json:"points"`
}

// snapshot measures combos/sec for every CPU approach plus the
// baseline on the fixed dataset and writes the JSON record.
func snapshot(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	snap := benchSnapshot{
		Schema:     "trigene-bench/1",
		SNPs:       snapSNPs,
		Samples:    snapSamples,
		Seed:       snapSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	add := func(rep *trigene.Report) {
		p := benchPoint{
			Backend:      rep.Backend,
			Approach:     rep.Approach,
			Combinations: rep.Combinations,
			DurationMs:   float64(rep.Duration) / float64(time.Millisecond),
			GElemsPerSec: rep.ElementsPerSec / 1e9,
		}
		if secs := rep.Duration.Seconds(); secs > 0 {
			p.CombosPerSec = float64(rep.Combinations) / secs
		}
		snap.Points = append(snap.Points, p)
	}
	for a := trigene.V1Naive; a <= trigene.V4Vector; a++ {
		rep, err := sess.Search(ctx, trigene.WithApproach(a))
		if err != nil {
			return err
		}
		add(rep)
	}
	base, err := sess.Search(ctx, trigene.WithBackend(trigene.Baseline()))
	if err != nil {
		return err
	}
	add(base)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "== Perf snapshot (%d SNPs x %d samples) -> %s ==\n", snapSNPs, snapSamples, outPath)
	t := report.NewTable("", "backend", "approach", "combos/s", "G elem/s")
	for _, p := range snap.Points {
		t.AddRowf(p.Backend, p.Approach, p.CombosPerSec, p.GElemsPerSec)
	}
	return render(t)
}

// orDefault returns s, or def when s is empty.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// schedHotLoop is one measured hot-loop configuration of the sched
// audit.
type schedHotLoop struct {
	Approach     string  `json:"approach"`
	Tiles        int64   `json:"tiles"`
	Combinations int64   `json:"combinations"`
	DurationMs   float64 `json:"durationMs"`
	TilesPerSec  float64 `json:"tilesPerSec"`
	CombosPerSec float64 `json:"combosPerSec"`
	AllocsPerOp  float64 `json:"allocsPerOp"`
}

// schedSnapshot is the machine-readable tile-scheduler audit record.
type schedSnapshot struct {
	Schema     string         `json:"schema"`
	SNPs       int            `json:"snps"`
	Samples    int            `json:"samples"`
	Seed       int64          `json:"seed"`
	GoMaxProcs int            `json:"gomaxprocs"`
	HotLoops   []schedHotLoop `json:"hotLoops"`
}

// schedExp audits the tile scheduler's claim→score hot loop on the
// fixed snapshot dataset: single-consumer tiles/sec for the V2 (flat)
// and V4 (blocked) pipelines, and the steady-state allocations per
// processed tile via testing.AllocsPerRun. Any nonzero allocation
// count is a regression of the zero-allocation guarantee and fails
// the run (and CI with it).
func schedExp(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	searcher, err := engine.New(mx)
	if err != nil {
		return err
	}
	snap := schedSnapshot{
		Schema:     "trigene-sched/1",
		SNPs:       snapSNPs,
		Samples:    snapSamples,
		Seed:       snapSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, a := range []engine.Approach{engine.V2Split, engine.V4Vector} {
		h, err := searcher.NewHotLoop(engine.Options{Approach: a, TopK: 4})
		if err != nil {
			return err
		}
		tiles := h.Tiles()
		// Warm-up: grow the top-K heap and fault in the pooled scratch.
		for i := int64(0); i < tiles && i < 32; i++ {
			h.Process(h.Tile(i))
		}
		var idx int64
		allocs := testing.AllocsPerRun(64, func() {
			h.Process(h.Tile(idx % tiles))
			idx++
		})
		before := h.Scored()
		start := time.Now()
		for i := int64(0); i < tiles; i++ {
			h.Process(h.Tile(i))
		}
		dur := time.Since(start)
		combos := h.Scored() - before
		hl := schedHotLoop{
			Approach:     a.String(),
			Tiles:        tiles,
			Combinations: combos,
			DurationMs:   float64(dur) / float64(time.Millisecond),
			AllocsPerOp:  allocs,
		}
		if secs := dur.Seconds(); secs > 0 {
			hl.TilesPerSec = float64(tiles) / secs
			hl.CombosPerSec = float64(combos) / secs
		}
		snap.HotLoops = append(snap.HotLoops, hl)
		h.Close()
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "== Tile-scheduler hot-loop audit (%d SNPs x %d samples) -> %s ==\n",
		snapSNPs, snapSamples, outPath)
	t := report.NewTable("", "approach", "tiles", "tiles/s", "combos/s", "allocs/op")
	for _, hl := range snap.HotLoops {
		t.AddRowf(hl.Approach, hl.Tiles, hl.TilesPerSec, hl.CombosPerSec, hl.AllocsPerOp)
	}
	if err := render(t); err != nil {
		return err
	}
	for _, hl := range snap.HotLoops {
		if hl.AllocsPerOp > 0 {
			return fmt.Errorf("hot-path allocation regression: %s allocates %.2f per tile (want 0)",
				hl.Approach, hl.AllocsPerOp)
		}
	}
	return nil
}

// clusterPoint is one loopback cluster configuration of the scaling
// audit.
type clusterPoint struct {
	Workers      int     `json:"workers"`
	Tiles        int     `json:"tiles"`
	DurationMs   float64 `json:"durationMs"`
	TilesPerSec  float64 `json:"tilesPerSec"`
	CombosPerSec float64 `json:"combosPerSec"`
	Speedup      float64 `json:"speedupVsSingleNode"`
}

// clusterSnapshot is the machine-readable cluster scaling record.
type clusterSnapshot struct {
	Schema     string `json:"schema"`
	SNPs       int    `json:"snps"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	SingleNode struct {
		DurationMs   float64 `json:"durationMs"`
		CombosPerSec float64 `json:"combosPerSec"`
	} `json:"singleNode"`
	Points []clusterPoint `json:"points"`
}

// clusterExp audits the distributed tile-leasing subsystem on a
// loopback cluster: an in-process coordinator and 1/2/4 single-core
// workers run the fixed snapshot search end to end (submit → lease →
// heartbeat → merge) and the record captures tiles/sec against a
// single-core single-node run. All workers share this host, so the
// numbers measure coordination overhead and scaling shape, not
// multi-machine throughput; it also cross-checks that the merged
// Report matches the single-node one bit-exactly.
func clusterExp(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	spec := trigene.SearchSpec{TopK: 4, Workers: 1}
	opts, err := spec.Options()
	if err != nil {
		return err
	}
	snap := clusterSnapshot{
		Schema:     "trigene-cluster/1",
		SNPs:       snapSNPs,
		Samples:    snapSamples,
		Seed:       snapSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	start := time.Now()
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		return err
	}
	singleDur := time.Since(start)
	snap.SingleNode.DurationMs = float64(singleDur) / float64(time.Millisecond)
	if secs := singleDur.Seconds(); secs > 0 {
		snap.SingleNode.CombosPerSec = float64(local.Combinations) / secs
	}

	co := cluster.NewCoordinator(cluster.Config{LeaseTTL: 10 * time.Second})
	srv := httptest.NewServer(co)
	defer srv.Close()
	cl := cluster.NewClient(srv.URL)
	cl.Poll = 5 * time.Millisecond

	const tiles = 32
	for _, n := range []int{1, 2, 4} {
		wctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			w := &cluster.Worker{Client: cl, ID: fmt.Sprintf("bench-w%d", i), Poll: 5 * time.Millisecond}
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.Run(wctx)
			}()
		}
		start := time.Now()
		id, err := cl.Submit(ctx, mx, spec, tiles, fmt.Sprintf("bench-%dw", n))
		if err == nil {
			var rep *trigene.Report
			if rep, err = cl.Wait(ctx, id); err == nil &&
				(rep.Combinations != local.Combinations || rep.Best.Score != local.Best.Score) {
				err = fmt.Errorf("cluster report diverged from single-node (combos %d vs %d)",
					rep.Combinations, local.Combinations)
			}
		}
		dur := time.Since(start)
		cancel()
		wg.Wait()
		if err != nil {
			return fmt.Errorf("%d workers: %w", n, err)
		}
		p := clusterPoint{Workers: n, Tiles: tiles, DurationMs: float64(dur) / float64(time.Millisecond)}
		if secs := dur.Seconds(); secs > 0 {
			p.TilesPerSec = float64(tiles) / secs
			p.CombosPerSec = float64(local.Combinations) / secs
		}
		if snap.SingleNode.DurationMs > 0 {
			p.Speedup = snap.SingleNode.DurationMs / p.DurationMs
		}
		snap.Points = append(snap.Points, p)
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "== Loopback cluster scaling (%d SNPs x %d samples, %d tiles) -> %s ==\n",
		snapSNPs, snapSamples, tiles, outPath)
	t := report.NewTable("", "workers", "duration", "tiles/s", "combos/s", "speedup vs single")
	t.AddRowf("single-node", fmt.Sprintf("%.1f ms", snap.SingleNode.DurationMs), "-",
		snap.SingleNode.CombosPerSec, report.Speedup(1))
	for _, p := range snap.Points {
		t.AddRowf(p.Workers, fmt.Sprintf("%.1f ms", p.DurationMs), p.TilesPerSec,
			p.CombosPerSec, report.Speedup(p.Speedup))
	}
	return render(t)
}

// planPoint is one backend's predicted-vs-measured record in the
// autotuning audit.
type planPoint struct {
	Backend               string  `json:"backend"`
	Approach              string  `json:"approach"`
	Grain                 int64   `json:"grain"`
	PlannedCPUFraction    float64 `json:"plannedCpuFraction,omitempty"`
	RealizedCPUFraction   float64 `json:"realizedCpuFraction,omitempty"`
	PredictedTilesPerSec  float64 `json:"predictedTilesPerSec"`
	MeasuredTilesPerSec   float64 `json:"measuredTilesPerSec"`
	PredictedGElemsPerSec float64 `json:"predictedGigaElementsPerSec"`
	MeasuredGElemsPerSec  float64 `json:"measuredGigaElementsPerSec"`
}

// planSnapshot is the machine-readable autotuning audit record.
type planSnapshot struct {
	Schema     string      `json:"schema"`
	SNPs       int         `json:"snps"`
	Samples    int         `json:"samples"`
	Seed       int64       `json:"seed"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Points     []planPoint `json:"points"`
}

// planExp is the prediction-sanity audit of the model-driven
// autotuner: for each backend it runs the fixed snapshot search twice
// — untuned and under WithAutoTune — and records the planner's
// predicted tiles/sec next to the host-measured rate at the grain the
// plan chose (measured tiles = combinations / plan grain, a uniform
// currency across backends; on gpusim the wall time is the
// simulator's own host cost). The gate is sanity, not accuracy: the
// predictions come from the paper's device models, the measurements
// from whatever container CI runs in. The run fails if a plan trace
// is missing or malformed (grain outside the scheduler clamps,
// non-positive predictions) or — the real teeth — if the autotuned
// Report diverges from the untuned one.
func planExp(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		return err
	}
	snap := planSnapshot{
		Schema:     "trigene-plan/1",
		SNPs:       snapSNPs,
		Samples:    snapSamples,
		Seed:       snapSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	cases := []struct {
		name    string
		backend trigene.Backend // nil = the planner chooses
	}{
		{"auto", nil},
		{"hetero", trigene.Hetero()},
		{"gpusim:GN1", trigene.GPUSim(gn1)},
	}
	for _, tc := range cases {
		pin := []trigene.Option{trigene.WithTopK(4)}
		if tc.backend != nil {
			pin = append(pin, trigene.WithBackend(tc.backend))
		}
		tuned, err := sess.Search(ctx, append(pin, trigene.WithAutoTune())...)
		if err != nil {
			return fmt.Errorf("%s autotuned: %w", tc.name, err)
		}
		p := tuned.Plan
		if p == nil {
			return fmt.Errorf("%s: autotuned Report carries no plan", tc.name)
		}
		if p.Grain < sched.MinGrain || p.Grain > sched.MaxGrain {
			return fmt.Errorf("%s: plan grain %d escapes the scheduler clamps [%d, %d]", tc.name, p.Grain, sched.MinGrain, sched.MaxGrain)
		}
		if p.PredictedCombosPerSec <= 0 || p.PredictedTilesPerSec <= 0 {
			return fmt.Errorf("%s: plan predicts nothing: %+v", tc.name, p)
		}
		// Parity gate: the plan may only change execution, never results.
		plainOpts := []trigene.Option{trigene.WithTopK(4)}
		if tc.backend != nil {
			plainOpts = append(plainOpts, trigene.WithBackend(tc.backend))
		}
		plain, err := sess.Search(ctx, plainOpts...)
		if err != nil {
			return fmt.Errorf("%s untuned: %w", tc.name, err)
		}
		if tuned.Combinations != plain.Combinations || len(tuned.TopK) != len(plain.TopK) {
			return fmt.Errorf("%s: autotuned run diverged (%d combos vs %d)", tc.name, tuned.Combinations, plain.Combinations)
		}
		for i := range plain.TopK {
			if tuned.TopK[i].Score != plain.TopK[i].Score {
				return fmt.Errorf("%s: autotuned top-%d score %v != %v", tc.name, i+1, tuned.TopK[i].Score, plain.TopK[i].Score)
			}
		}

		pt := planPoint{
			Backend:               tuned.Backend,
			Approach:              tuned.Approach,
			Grain:                 p.Grain,
			PredictedTilesPerSec:  p.PredictedTilesPerSec,
			PredictedGElemsPerSec: p.PredictedCPUGElems + p.PredictedGPUGElems,
			MeasuredGElemsPerSec:  tuned.ElementsPerSec / 1e9,
		}
		if secs := tuned.Duration.Seconds(); secs > 0 {
			pt.MeasuredTilesPerSec = float64(tuned.Combinations) / float64(p.Grain) / secs
		}
		if pt.MeasuredTilesPerSec <= 0 {
			return fmt.Errorf("%s: no measured throughput", tc.name)
		}
		if tuned.Hetero != nil {
			pt.PlannedCPUFraction = p.CPUFraction
			pt.RealizedCPUFraction = tuned.Hetero.CPUFraction
		}
		snap.Points = append(snap.Points, pt)
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "== Autotuning prediction audit (%d SNPs x %d samples) -> %s ==\n",
		snapSNPs, snapSamples, outPath)
	t := report.NewTable("", "backend", "approach", "grain", "pred tiles/s", "meas tiles/s", "planned split", "realized split")
	for _, pt := range snap.Points {
		planned, realized := "-", "-"
		if pt.RealizedCPUFraction > 0 {
			planned = fmt.Sprintf("%.2f", pt.PlannedCPUFraction)
			realized = fmt.Sprintf("%.2f", pt.RealizedCPUFraction)
		}
		t.AddRowf(pt.Backend, pt.Approach, pt.Grain, pt.PredictedTilesPerSec, pt.MeasuredTilesPerSec, planned, realized)
	}
	return render(t)
}

// energyExp models the paper's future-work direction: DVFS sweeps and
// the energy-optimal operating point per device.
func energyExp() error {
	fmt.Fprintln(out, "== DVFS energy study (modeled, paper future work), 8192 SNPs x 16384 samples ==")
	t := report.NewTable("", "device", "nominal GHz", "G elem/J @nominal", "optimal GHz", "G elem/J @optimal", "gain")
	add := func(id string, m energy.DVFSModel) {
		nom := m.EfficiencyAt(m.NominalGHz)
		opt := m.OptimalGHz()
		best := m.EfficiencyAt(opt)
		t.AddRowf(id, m.NominalGHz, nom, opt, best, report.Speedup(best/nom))
	}
	for _, c := range device.AllCPUs() {
		add(c.ID, energy.ForCPU(c, 8192, figSamples))
	}
	for _, g := range device.AllGPUs() {
		add(g.ID, energy.ForGPU(g, 8192, figSamples))
	}
	if err := render(t); err != nil {
		return err
	}
	gi2, err := device.GPUByID("GI2")
	if err != nil {
		return err
	}
	sweep, err := energy.ForGPU(gi2, 8192, figSamples).Sweep(7)
	if err != nil {
		return err
	}
	st := report.NewTable("GI2 DVFS sweep", "GHz", "watts", "G elem/s", "G elem/J")
	for _, p := range sweep {
		st.AddRowf(p.GHz, p.Watts, p.GElems, p.Efficiency)
	}
	return render(st)
}

// ---------------------------------------------------------------------
// encoded-dataset store audit (-exp store)

// storeSnapshot is the BENCH_PR5.json schema: the cost of building
// each representation from scratch vs loading it from a .tpack, and
// the dataset's size in each wire form.
type storeSnapshot struct {
	Schema     string `json:"schema"`
	SNPs       int    `json:"snps"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// ColdMs is the from-scratch cost per representation (text parse,
	// then each encode over the parsed matrix).
	ColdMs struct {
		ParseText   float64 `json:"parseText"`
		Binarize    float64 `json:"binarize"`
		Split       float64 `json:"split"`
		Words32     float64 `json:"words32"`
		ClassPlanes float64 `json:"classPlanes"`
	} `json:"coldMs"`

	// PackMs is the pack path: one write, then loads that adopt the
	// binarized and split planes with no re-encode.
	PackMs struct {
		Write    float64 `json:"write"`
		ReadHeap float64 `json:"readHeap"`
		OpenMmap float64 `json:"openMmap"`
	} `json:"packMs"`
	Mapped bool `json:"mapped"`

	// WireBytes compares the dataset's size per format.
	WireBytes struct {
		Text   int `json:"text"`
		Binary int `json:"binary"`
		Pack   int `json:"pack"`
	} `json:"wireBytes"`

	// SpeedupVsReencode is (cold binarize + split) / pack load — the
	// job-start saving a worker sees on a cache hit. The audit fails
	// below 1.
	SpeedupVsReencode struct {
		ReadHeap float64 `json:"readHeap"`
		OpenMmap float64 `json:"openMmap"`
	} `json:"speedupVsReencode"`
}

// storeBenchReps is how many times each timed step runs; the median
// lands in the snapshot so one scheduler hiccup cannot fail CI.
const storeBenchReps = 5

// medianMs times f storeBenchReps times and returns the median in ms.
func medianMs(f func() error) (float64, error) {
	var times []float64
	for i := 0; i < storeBenchReps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start))/float64(time.Millisecond))
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

func storeExp(outPath string) error {
	const (
		storeSNPs    = 384
		storeSamples = 4096
		storeSeed    = 23
	)
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: storeSNPs, Samples: storeSamples, Seed: storeSeed})
	if err != nil {
		return err
	}
	snap := storeSnapshot{
		Schema:     "trigene-store/1",
		SNPs:       storeSNPs,
		Samples:    storeSamples,
		Seed:       storeSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Wire sizes.
	var text, bin bytes.Buffer
	if err := trigene.WriteText(&text, mx); err != nil {
		return err
	}
	if err := trigene.WriteBinary(&bin, mx); err != nil {
		return err
	}
	st, err := store.New(mx)
	if err != nil {
		return err
	}
	var pack bytes.Buffer
	snap.PackMs.Write, err = medianMs(func() error {
		pack.Reset()
		return st.WritePack(&pack)
	})
	if err != nil {
		return err
	}
	snap.WireBytes.Text = text.Len()
	snap.WireBytes.Binary = bin.Len()
	snap.WireBytes.Pack = pack.Len()

	// Cold path: parse the text form, then build each encoding fresh.
	snap.ColdMs.ParseText, err = medianMs(func() error {
		_, err := trigene.ReadText(bytes.NewReader(text.Bytes()))
		return err
	})
	if err != nil {
		return err
	}
	// Time the raw encodes alone — the exact work a pack load skips —
	// not store.New's one-time validation walk.
	if snap.ColdMs.Binarize, err = medianMs(func() error {
		dataset.Binarize(mx)
		return nil
	}); err != nil {
		return err
	}
	if snap.ColdMs.Split, err = medianMs(func() error {
		dataset.SplitBinarize(mx)
		return nil
	}); err != nil {
		return err
	}
	split := st.Split()
	if snap.ColdMs.Words32, err = medianMs(func() error {
		dataset.BuildWords32(split, dataset.LayoutTiled, 32)
		return nil
	}); err != nil {
		return err
	}
	if snap.ColdMs.ClassPlanes, err = medianMs(func() error {
		dataset.BuildClassPlanes(mx)
		return nil
	}); err != nil {
		return err
	}

	// Packed path: heap decode (the wire form) and mmap open.
	var loaded *store.Store
	if snap.PackMs.ReadHeap, err = medianMs(func() error {
		loaded, err = store.ReadPack(bytes.NewReader(pack.Bytes()))
		return err
	}); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "trigene-store-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	packPath := dir + "/bench.tpack"
	if err := os.WriteFile(packPath, pack.Bytes(), 0o644); err != nil {
		return err
	}
	var mapped *store.Store
	if snap.PackMs.OpenMmap, err = medianMs(func() error {
		if mapped != nil {
			mapped.Close()
		}
		mapped, err = store.Open(packPath)
		return err
	}); err != nil {
		return err
	}
	defer mapped.Close()
	snap.Mapped = mapped.Mapped()

	// Correctness cross-check: the loaded stores carry the same content
	// and adopt the encodings without rebuilding them.
	if loaded.Hash() != st.Hash() || mapped.Hash() != st.Hash() {
		return fmt.Errorf("pack load changed the dataset hash")
	}
	if b := loaded.Builds(); b.Binarized != 0 || b.Split != 0 {
		return fmt.Errorf("heap pack load re-encoded: %+v", b)
	}

	reencode := snap.ColdMs.Binarize + snap.ColdMs.Split
	if snap.PackMs.ReadHeap > 0 {
		snap.SpeedupVsReencode.ReadHeap = reencode / snap.PackMs.ReadHeap
	}
	if snap.PackMs.OpenMmap > 0 {
		snap.SpeedupVsReencode.OpenMmap = reencode / snap.PackMs.OpenMmap
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Encoded-dataset store audit (%d SNPs x %d samples) -> %s ==\n",
		storeSNPs, storeSamples, outPath)
	t := report.NewTable("", "step", "cold ms", "packed ms")
	t.AddRowf("parse text", snap.ColdMs.ParseText, "-")
	t.AddRowf("binarize (V1 planes)", snap.ColdMs.Binarize, "adopted")
	t.AddRowf("split (V2+ planes)", snap.ColdMs.Split, "adopted")
	t.AddRowf("words32 tiled", snap.ColdMs.Words32, "lazy")
	t.AddRowf("class planes", snap.ColdMs.ClassPlanes, "lazy")
	t.AddRowf("pack load (heap)", "-", snap.PackMs.ReadHeap)
	t.AddRowf("pack load (mmap)", "-", snap.PackMs.OpenMmap)
	if err := render(t); err != nil {
		return err
	}
	w := report.NewTable("bytes on wire", "format", "bytes")
	w.AddRowf("text", snap.WireBytes.Text)
	w.AddRowf("binary", snap.WireBytes.Binary)
	w.AddRowf("pack (.tpack)", snap.WireBytes.Pack)
	if err := render(w); err != nil {
		return err
	}
	fmt.Fprintf(out, "packed load vs re-encode: %.1fx (heap), %.1fx (mmap, mapped=%v)\n",
		snap.SpeedupVsReencode.ReadHeap, snap.SpeedupVsReencode.OpenMmap, snap.Mapped)

	// The audit gate: loading prebuilt encodings must beat rebuilding
	// them, on both load paths.
	if snap.SpeedupVsReencode.ReadHeap <= 1 {
		return fmt.Errorf("heap pack load (%.2f ms) is not faster than re-encoding (%.2f ms)",
			snap.PackMs.ReadHeap, reencode)
	}
	if snap.SpeedupVsReencode.OpenMmap <= 1 {
		return fmt.Errorf("mmap pack load (%.2f ms) is not faster than re-encoding (%.2f ms)",
			snap.PackMs.OpenMmap, reencode)
	}
	return nil
}

// ---------------------------------------------------------------------
// durable-coordinator audit (-exp durable)

// durableRecoveryPoint is one restart measurement: a state directory
// holding the given number of running jobs, recovered from scratch.
type durableRecoveryPoint struct {
	Jobs           int     `json:"jobs"`
	TilesPerJob    int     `json:"tilesPerJob"`
	JournalRecords int     `json:"journalRecords"`
	SnapshotBytes  int64   `json:"snapshotBytes"`
	RecoveryMs     float64 `json:"recoveryMs"`
}

// durableSnapshot is the BENCH_PR6.json schema: the raw journal's
// append cost, recovery cost as the retained state grows, and the
// lease-grant throughput a journaling coordinator sustains relative to
// the in-memory one.
type durableSnapshot struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Journal is the internal/wal micro-benchmark: the per-record cost
	// of a buffered Append (the grant path) and of an Append+Sync pair
	// (the sync-on-ack path a submit or completion pays).
	Journal struct {
		PayloadBytes     int     `json:"payloadBytes"`
		BufferedAppendUs float64 `json:"bufferedAppendUs"`
		SyncedAppendUs   float64 `json:"syncedAppendUs"`
	} `json:"journal"`

	// Recovery is snapshot size and Recover() wall time vs job count.
	Recovery []durableRecoveryPoint `json:"recovery"`

	// LeaseThroughput compares grants/sec over loopback HTTP (the path
	// workers drive) with journaling on vs off. The audit fails when
	// Ratio drops below 0.9 — journaling must stay off the grant path's
	// critical cost (grants are buffered, never fsynced).
	LeaseThroughput struct {
		Tiles               int     `json:"tiles"`
		MemoryGrantsPerSec  float64 `json:"memoryGrantsPerSec"`
		DurableGrantsPerSec float64 `json:"durableGrantsPerSec"`
		Ratio               float64 `json:"ratio"`
	} `json:"leaseThroughput"`
}

// callJSON drives an http.Handler directly (no sockets): one JSON
// request in, the decoded JSON body out. Returns the status code; non-
// 2xx answers come back as errors.
func callJSON(h http.Handler, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, body)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code < 200 || rr.Code > 299 {
		return rr.Code, fmt.Errorf("%s %s: HTTP %d: %s", method, path, rr.Code, bytes.TrimSpace(rr.Body.Bytes()))
	}
	if out != nil && rr.Code != http.StatusNoContent {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			return rr.Code, err
		}
	}
	return rr.Code, nil
}

// submitJob posts one job through the handler and returns its ID.
func submitJob(h http.Handler, mx *trigene.Matrix, tiles int, name string) (string, error) {
	var data bytes.Buffer
	if err := trigene.WriteBinary(&data, mx); err != nil {
		return "", err
	}
	var resp cluster.SubmitResponse
	_, err := callJSON(h, http.MethodPost, "/v1/jobs", cluster.SubmitRequest{
		Name:    name,
		Spec:    trigene.SearchSpec{TopK: 4},
		Tiles:   tiles,
		Dataset: data.Bytes(),
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// postJSON posts one JSON request to a live coordinator and decodes
// the body into out (nil discards it). Returns the status code; non-
// 2xx answers come back as errors.
func postJSON(hc *http.Client, url string, in, out any) (int, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// grantRep submits one fresh job to a live coordinator and times
// draining all its tiles through POST /v1/lease over loopback HTTP —
// the path workers actually drive, so the measured rate includes the
// wire cost a real deployment pays per grant. The submit stays outside
// the timed window: its fsync is the sync-on-ack cost, not the grant
// path under audit.
func grantRep(base string, hc *http.Client, mx *trigene.Matrix, tiles int, label string) (float64, error) {
	cl := cluster.NewClient(base)
	cl.HTTPClient = hc
	if _, err := cl.Submit(context.Background(), mx, trigene.SearchSpec{TopK: 4}, tiles, label); err != nil {
		return 0, err
	}
	granted := 0
	start := time.Now()
	for granted < tiles {
		var g cluster.LeaseGrant
		code, err := postJSON(hc, base+"/v1/lease", cluster.LeaseRequest{Worker: label}, &g)
		if err != nil {
			return 0, err
		}
		if code == http.StatusNoContent {
			return 0, fmt.Errorf("%s: coordinator ran dry after %d of %d grants", label, granted, tiles)
		}
		if n := len(g.Granted); n > 0 {
			granted += n
		} else {
			granted++
		}
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		return 0, fmt.Errorf("%s: no measurable grant rate", label)
	}
	return float64(tiles) / secs, nil
}

// median of a non-empty sample (sorts in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// durableExp audits the durable coordinator (internal/wal + Recover):
// raw journal append cost, snapshot size and recovery time as the
// number of live jobs grows, and — the regression gate — the lease-
// grant throughput of a journaling coordinator against the in-memory
// one. Grants are journaled through the buffer only (sync-on-ack
// covers submits, completions and finishes), so journaling must cost
// the grant path less than 10%; the run exits nonzero otherwise.
func durableExp(outPath string) error {
	snap := durableSnapshot{
		Schema:     "trigene-durable/1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	root, err := os.MkdirTemp("", "trigene-durable-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Journal micro-benchmark. The payload is shaped like the grant
	// record the coordinator journals most often.
	payload := []byte(`{"t":"grant","job":"j1","tile":12,"seq":4096,"attempt":1,"worker":"bench-w0","ns":1700000000000000000}`)
	l, err := wal.Open(filepath.Join(root, "journal"))
	if err != nil {
		return err
	}
	const bufferedAppends = 8192
	start := time.Now()
	for i := 0; i < bufferedAppends; i++ {
		if err := l.Append(payload); err != nil {
			return err
		}
	}
	bufDur := time.Since(start)
	if err := l.Sync(); err != nil {
		return err
	}
	const syncedAppends = 128
	start = time.Now()
	for i := 0; i < syncedAppends; i++ {
		if err := l.Append(payload); err != nil {
			return err
		}
		if err := l.Sync(); err != nil {
			return err
		}
	}
	syncDur := time.Since(start)
	if err := l.Close(); err != nil {
		return err
	}
	snap.Journal.PayloadBytes = len(payload)
	snap.Journal.BufferedAppendUs = float64(bufDur) / float64(time.Microsecond) / bufferedAppends
	snap.Journal.SyncedAppendUs = float64(syncDur) / float64(time.Microsecond) / syncedAppends

	// Recovery vs job count: J running jobs (distinct datasets, so the
	// pack store holds J packs), coordinator closed, then Recover timed
	// cold — replay, pack reload and the post-recovery compaction.
	const recoveryTiles = 8
	for _, jobs := range []int{1, 4, 16} {
		cfg := cluster.Config{
			LeaseTTL: time.Minute,
			StateDir: filepath.Join(root, fmt.Sprintf("state-%d", jobs)),
		}
		co, err := cluster.Recover(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < jobs; i++ {
			mx, err := trigene.Generate(trigene.GenConfig{
				SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed + int64(1000*jobs+i),
			})
			if err != nil {
				return err
			}
			if _, err := submitJob(co, mx, recoveryTiles, fmt.Sprintf("recov-%d-%d", jobs, i)); err != nil {
				return err
			}
		}
		if err := co.Close(); err != nil {
			return err
		}
		jl, err := wal.Open(cfg.StateDir)
		if err != nil {
			return err
		}
		records := len(jl.Records())
		if err := jl.Close(); err != nil {
			return err
		}
		start := time.Now()
		co2, err := cluster.Recover(cfg)
		if err != nil {
			return err
		}
		recoveryMs := float64(time.Since(start)) / float64(time.Millisecond)
		fi, err := os.Stat(filepath.Join(cfg.StateDir, "snapshot.snap"))
		if err != nil {
			return fmt.Errorf("recovery left no snapshot: %w", err)
		}
		if err := co2.Close(); err != nil {
			return err
		}
		snap.Recovery = append(snap.Recovery, durableRecoveryPoint{
			Jobs:           jobs,
			TilesPerJob:    recoveryTiles,
			JournalRecords: records,
			SnapshotBytes:  fi.Size(),
			RecoveryMs:     recoveryMs,
		})
	}

	// Lease-grant throughput, journaling off vs on.
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	const leaseTiles = 512
	hc := &http.Client{}
	memCo := cluster.NewCoordinator(cluster.Config{LeaseTTL: 10 * time.Minute})
	memSrv := httptest.NewServer(memCo)
	defer memSrv.Close()
	durCo, err := cluster.Recover(cluster.Config{
		LeaseTTL: 10 * time.Minute,
		StateDir: filepath.Join(root, "lease-state"),
	})
	if err != nil {
		return err
	}
	defer durCo.Close()
	durSrv := httptest.NewServer(durCo)
	defer durSrv.Close()
	// Warm-up: the first grants fault in the JSON machinery, connection
	// pool and scheduler paths, and must not bill either side.
	if _, err := grantRep(memSrv.URL, hc, mx, leaseTiles, "bench-warmup-mem"); err != nil {
		return err
	}
	if _, err := grantRep(durSrv.URL, hc, mx, leaseTiles, "bench-warmup-durable"); err != nil {
		return err
	}
	// Paired reps: each rep measures both coordinators back to back and
	// contributes one durable/memory ratio, so clock-frequency drift and
	// scheduler hiccups hit both sides of a pair alike; the gate is the
	// median of the per-pair ratios.
	var memRates, durRates, ratios []float64
	for r := 0; r < storeBenchReps; r++ {
		m, err := grantRep(memSrv.URL, hc, mx, leaseTiles, fmt.Sprintf("bench-mem-%d", r))
		if err != nil {
			return err
		}
		d, err := grantRep(durSrv.URL, hc, mx, leaseTiles, fmt.Sprintf("bench-durable-%d", r))
		if err != nil {
			return err
		}
		memRates = append(memRates, m)
		durRates = append(durRates, d)
		ratios = append(ratios, d/m)
	}
	memRate, durRate := median(memRates), median(durRates)
	snap.LeaseThroughput.Tiles = leaseTiles
	snap.LeaseThroughput.MemoryGrantsPerSec = memRate
	snap.LeaseThroughput.DurableGrantsPerSec = durRate
	snap.LeaseThroughput.Ratio = median(ratios)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Durable coordinator audit -> %s ==\n", outPath)
	jt := report.NewTable("journal append (payload "+fmt.Sprint(snap.Journal.PayloadBytes)+" B)",
		"path", "µs/record")
	jt.AddRowf("buffered (grant path)", snap.Journal.BufferedAppendUs)
	jt.AddRowf("append+fsync (sync-on-ack)", snap.Journal.SyncedAppendUs)
	if err := render(jt); err != nil {
		return err
	}
	rt := report.NewTable("recovery vs job count", "jobs", "journal records", "snapshot bytes", "recovery ms")
	for _, p := range snap.Recovery {
		rt.AddRowf(p.Jobs, p.JournalRecords, p.SnapshotBytes, p.RecoveryMs)
	}
	if err := render(rt); err != nil {
		return err
	}
	lt := report.NewTable(fmt.Sprintf("lease-grant throughput (%d tiles/job, median of %d)", leaseTiles, storeBenchReps),
		"coordinator", "grants/s", "vs memory")
	lt.AddRowf("in-memory", snap.LeaseThroughput.MemoryGrantsPerSec, report.Speedup(1))
	lt.AddRowf("journaling", snap.LeaseThroughput.DurableGrantsPerSec, report.Speedup(snap.LeaseThroughput.Ratio))
	if err := render(lt); err != nil {
		return err
	}

	if snap.LeaseThroughput.Ratio < 0.9 {
		return fmt.Errorf("journaling regresses lease-grant throughput beyond 10%%: %.0f/s vs %.0f/s (median paired ratio %.3f, want >= 0.9)",
			durRate, memRate, snap.LeaseThroughput.Ratio)
	}
	return nil
}

// ---------------------------------------------------------------------
// fused-kernel audit (-exp kernels)

// kernelPoint is one measured (pipeline, tile shape) configuration.
type kernelPoint struct {
	Approach     string  `json:"approach"`
	BlockSNPs    int     `json:"blockSnps"`
	BlockWords   int     `json:"blockWords"`
	DurationMs   float64 `json:"durationMs"`
	GElemsPerSec float64 `json:"gigaElementsPerSec"`
}

// kernelsSnapshot is the BENCH_PR7.json schema: the blocked pipelines
// and their fused variants across tile shapes, and the headline
// fused-vs-unfused speedups (best tile shape on each side).
type kernelsSnapshot struct {
	Schema     string        `json:"schema"`
	SNPs       int           `json:"snps"`
	Samples    int           `json:"samples"`
	Seed       int64         `json:"seed"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Points     []kernelPoint `json:"points"`
	SpeedupV3F float64       `json:"speedupV3FvsV3"`
	SpeedupV4F float64       `json:"speedupV4FvsV4"`
}

// kernelsExp is the fused-kernel audit: on a fixed dataset it measures
// the host G elements/s of the blocked scalar (V3/V3F) and unrolled
// (V4/V4F) pipelines at several tile shapes — both pipelines of a pair
// run the same tile so the only difference is the cached pair-AND
// planes. Each rep runs the four pipelines back to back and
// contributes one fused/unfused ratio per pair, so clock drift and
// co-tenant noise hit both sides of a ratio alike; the headline
// speedups are the medians of those paired ratios across reps and
// tiles. Every run is cross-checked against the unfused result
// bit-exactly, and the audit (and CI with it) fails if the fused V4F
// does not beat the unfused V4.
func kernelsExp(outPath string) error {
	const (
		kernSNPs    = 128
		kernSamples = 4096
		kernSeed    = 29
		kernReps    = 3
	)
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: kernSNPs, Samples: kernSamples, Seed: kernSeed})
	if err != nil {
		return err
	}
	searcher, err := engine.New(mx)
	if err != nil {
		return err
	}
	snap := kernelsSnapshot{
		Schema:     "trigene-kernels/1",
		SNPs:       kernSNPs,
		Samples:    kernSamples,
		Seed:       kernSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       kernReps,
	}
	tiles := []struct{ bs, bw int }{
		{8, 64},
		{16, 32},
		{32, 16},
	}
	pipelines := []engine.Approach{engine.V3Blocked, engine.V3Fused, engine.V4Vector, engine.V4Fused}
	// Reference result for the bit-exactness cross-check.
	ref, err := searcher.Run(engine.Options{Approach: engine.V2Split})
	if err != nil {
		return err
	}
	best := map[engine.Approach]float64{}
	durMs := map[engine.Approach]float64{}
	var ratiosV3F, ratiosV4F []float64
	for _, tl := range tiles {
		rates := map[engine.Approach][]float64{}
		for r := 0; r < kernReps; r++ {
			rep := map[engine.Approach]float64{}
			for _, a := range pipelines {
				opts := engine.Options{Approach: a, BlockSNPs: tl.bs, BlockWords: tl.bw}
				res, err := searcher.Run(opts)
				if err != nil {
					return fmt.Errorf("%v %dx%d: %w", a, tl.bs, tl.bw, err)
				}
				if res.Best.Triple != ref.Best.Triple || res.Best.Score != ref.Best.Score {
					return fmt.Errorf("%v %dx%d: best diverged from V2 reference", a, tl.bs, tl.bw)
				}
				rep[a] = res.Stats.ElementsPerSec
				rates[a] = append(rates[a], res.Stats.ElementsPerSec)
				durMs[a] = float64(res.Stats.Duration) / float64(time.Millisecond)
			}
			ratiosV3F = append(ratiosV3F, rep[engine.V3Fused]/rep[engine.V3Blocked])
			ratiosV4F = append(ratiosV4F, rep[engine.V4Fused]/rep[engine.V4Vector])
		}
		for _, a := range pipelines {
			// Max, not median: throughput under scheduler interference
			// only loses, so the best rep is the cleanest per-tile
			// estimate (the gate uses the paired ratios, not these).
			rate := maxRate(rates[a])
			if rate > best[a] {
				best[a] = rate
			}
			snap.Points = append(snap.Points, kernelPoint{
				Approach:     a.String(),
				BlockSNPs:    tl.bs,
				BlockWords:   tl.bw,
				DurationMs:   durMs[a],
				GElemsPerSec: rate / 1e9,
			})
		}
	}
	snap.SpeedupV3F = median(ratiosV3F)
	snap.SpeedupV4F = median(ratiosV4F)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Fused-kernel audit (%d SNPs x %d samples, best of %d) -> %s ==\n",
		kernSNPs, kernSamples, kernReps, outPath)
	t := report.NewTable("", "approach", "tile", "G elem/s")
	for _, p := range snap.Points {
		t.AddRowf(p.Approach, fmt.Sprintf("%dx%d", p.BlockSNPs, p.BlockWords), p.GElemsPerSec)
	}
	if err := render(t); err != nil {
		return err
	}
	fmt.Fprintf(out, "median paired speedup: V3F %s vs V3, V4F %s vs V4\n",
		report.Speedup(snap.SpeedupV3F), report.Speedup(snap.SpeedupV4F))

	// The audit gate: caching the pair planes must pay off on the
	// vector pipeline, the one the planner defaults to.
	if snap.SpeedupV4F <= 1 {
		return fmt.Errorf("fused V4F does not beat unfused V4: median paired speedup %.3f (best rates %.2f vs %.2f G elem/s)",
			snap.SpeedupV4F, best[engine.V4Fused]/1e9, best[engine.V4Vector]/1e9)
	}
	return nil
}

// ---------------------------------------------------------------------
// observability-overhead audit (-exp obs)

// obsSnapshot is the BENCH_PR8.json schema: the V4F hot loop's
// tiles/sec with a live metrics registry attached vs without, and the
// steady-state allocations per tile with the registry on.
type obsSnapshot struct {
	Schema     string `json:"schema"`
	SNPs       int    `json:"snps"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Approach   string `json:"approach"`
	Tiles      int64  `json:"tiles"`
	Reps       int    `json:"reps"`

	PlainTilesPerSec        float64 `json:"plainTilesPerSec"`
	MetricsTilesPerSec      float64 `json:"metricsTilesPerSec"`
	MedianPairedRatio       float64 `json:"medianPairedRatio"` // metrics / plain
	OverheadPct             float64 `json:"overheadPct"`
	AllocsPerOpWithRegistry float64 `json:"allocsPerOpWithRegistry"`
	ScrapedSeries           int     `json:"scrapedSeries"`
}

// obsPasses is how many full drains one rate measurement times: a
// single drain of the fixed dataset is a few tens of milliseconds,
// short enough for scheduler noise to swamp a 2% effect.
const obsPasses = 8

// obsHotLoopRate drains every tile of one fresh V4F hot loop
// obsPasses times and returns tiles/sec (reg nil = uninstrumented).
func obsHotLoopRate(searcher *engine.Searcher, reg *obs.Registry) (float64, int64, error) {
	h, err := searcher.NewHotLoop(engine.Options{Approach: engine.V4Fused, TopK: 4, Metrics: reg})
	if err != nil {
		return 0, 0, err
	}
	defer h.Close()
	tiles := h.Tiles()
	start := time.Now()
	for p := 0; p < obsPasses; p++ {
		for i := int64(0); i < tiles; i++ {
			h.Process(h.Tile(i))
		}
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		return 0, 0, fmt.Errorf("no measurable hot-loop rate")
	}
	return float64(obsPasses) * float64(tiles) / secs, tiles, nil
}

// obsExp audits the cost of the observability layer on the hottest
// path in the repository: the V4F claim→score loop. Each rep runs the
// loop uninstrumented and with a live registry back to back and
// contributes one metrics/plain ratio, so clock drift and co-tenant
// noise hit both sides of a pair alike; the headline overhead is the
// median of the paired ratios. The audit (and CI with it) fails if
// instrumentation costs more than 2% of tiles/sec or allocates on the
// hot path, and cross-checks that a /metrics-style scrape of the live
// registry actually carries the engine series.
func obsExp(outPath string) error {
	const obsReps = 7
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snapSNPs, Samples: snapSamples, Seed: snapSeed})
	if err != nil {
		return err
	}
	searcher, err := engine.New(mx)
	if err != nil {
		return err
	}
	snap := obsSnapshot{
		Schema:     "trigene-obs/1",
		SNPs:       snapSNPs,
		Samples:    snapSamples,
		Seed:       snapSeed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Approach:   engine.V4Fused.String(),
		Reps:       obsReps,
	}
	reg := obs.NewRegistry()

	// Steady-state allocations per tile with the registry live.
	h, err := searcher.NewHotLoop(engine.Options{Approach: engine.V4Fused, TopK: 4, Metrics: reg})
	if err != nil {
		return err
	}
	tiles := h.Tiles()
	for i := int64(0); i < tiles && i < 32; i++ {
		h.Process(h.Tile(i))
	}
	var idx int64
	snap.AllocsPerOpWithRegistry = testing.AllocsPerRun(64, func() {
		h.Process(h.Tile(idx % tiles))
		idx++
	})
	h.Close()

	// Warm-up both sides, then paired reps.
	if _, _, err := obsHotLoopRate(searcher, nil); err != nil {
		return err
	}
	if _, _, err := obsHotLoopRate(searcher, reg); err != nil {
		return err
	}
	var plainRates, metricRates, ratios []float64
	for r := 0; r < obsReps; r++ {
		plain, n, err := obsHotLoopRate(searcher, nil)
		if err != nil {
			return err
		}
		instr, _, err := obsHotLoopRate(searcher, reg)
		if err != nil {
			return err
		}
		snap.Tiles = n
		plainRates = append(plainRates, plain)
		metricRates = append(metricRates, instr)
		ratios = append(ratios, instr/plain)
	}
	snap.PlainTilesPerSec = median(plainRates)
	snap.MetricsTilesPerSec = median(metricRates)
	snap.MedianPairedRatio = median(ratios)
	snap.OverheadPct = (1 - snap.MedianPairedRatio) * 100

	// Scrape cross-check: the registry the loops fed must expose the
	// engine series in the Prometheus text format.
	var expo bytes.Buffer
	if _, err := reg.WriteTo(&expo); err != nil {
		return err
	}
	if !bytes.Contains(expo.Bytes(), []byte("trigene_engine_tiles_total")) {
		return fmt.Errorf("scrape of the live registry carries no trigene_engine_tiles_total series")
	}
	for _, line := range bytes.Split(expo.Bytes(), []byte("\n")) {
		if len(line) > 0 && line[0] != '#' {
			snap.ScrapedSeries++
		}
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Observability-overhead audit (%d SNPs x %d samples, median of %d) -> %s ==\n",
		snapSNPs, snapSamples, obsReps, outPath)
	t := report.NewTable("", "hot loop", "tiles/s", "allocs/op")
	t.AddRowf("uninstrumented", snap.PlainTilesPerSec, "-")
	t.AddRowf("live registry", snap.MetricsTilesPerSec, snap.AllocsPerOpWithRegistry)
	if err := render(t); err != nil {
		return err
	}
	fmt.Fprintf(out, "median paired ratio %.4f (overhead %.2f%%), %d series scraped\n",
		snap.MedianPairedRatio, snap.OverheadPct, snap.ScrapedSeries)

	// The audit gates: metrics must be free enough to leave on.
	if snap.AllocsPerOpWithRegistry > 0 {
		return fmt.Errorf("hot path allocates %.2f per tile with a live registry (want 0)",
			snap.AllocsPerOpWithRegistry)
	}
	if snap.MedianPairedRatio < 0.98 {
		return fmt.Errorf("metrics overhead beyond 2%%: median paired ratio %.4f (%.0f vs %.0f tiles/s)",
			snap.MedianPairedRatio, snap.MetricsTilesPerSec, snap.PlainTilesPerSec)
	}
	return nil
}

// screenSnapshot is the committed BENCH_PR9.json shape.
type screenSnapshot struct {
	Schema     string `json:"schema"`
	SNPs       int    `json:"snps"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Approach   string `json:"approach"`
	Reps       int    `json:"reps"`

	PlantedSNPs    []int `json:"plantedSnps"`
	SurvivorBudget int   `json:"survivorBudget"`
	SeedPairs      int   `json:"seedPairs"`

	ExhaustiveTriples int64 `json:"exhaustiveTriples"`
	ScreenedTriples   int64 `json:"screenedTriples"`
	PairsScanned      int64 `json:"pairsScanned"`

	ExhaustiveMedianMs  float64 `json:"exhaustiveMedianMs"`
	ScreenedMedianMs    float64 `json:"screenedMedianMs"`
	MedianPairedSpeedup float64 `json:"medianPairedSpeedup"`
	Stage1MedianMs      float64 `json:"stage1MedianMs"`
	Stage2MedianMs      float64 `json:"stage2MedianMs"`

	SurvivorRecall        float64 `json:"survivorRecall"`
	BestMatchesExhaustive bool    `json:"bestMatchesExhaustive"`
	AllocsPerOpSubset     float64 `json:"allocsPerOpSubset"`
}

// Screened-search audit shape: a planted third-order signal in a
// dataset big enough that C(M,3) hurts, a survivor budget small enough
// that C(S,3) does not.
const (
	screenAuditSNPs      = 112
	screenAuditSamples   = 2048
	screenAuditSeed      = 29
	screenAuditSurvivors = 24
	screenAuditSeedPairs = 8
	screenAuditReps      = 5
)

// screenAuditPlanted is where the interaction is planted (spread across
// the index range so survivor selection cannot luck into it).
var screenAuditPlanted = []int{11, 47, 83}

// screenExp audits the two-stage screened search end to end. Each rep
// runs the exhaustive V4F search and the screened one (WithScreen,
// survivor budget S, seeded extensions) back to back on the same
// session and contributes one exhaustive/screened wall-time ratio, so
// co-tenant noise hits both sides of a pair alike; the headline
// speedup is the median of the paired ratios. The audit (and CI with
// it) fails if screening is not at least 3x faster, if the stage-1
// scan prunes any planted SNP (survivor recall below 100%), if the
// screened best differs from the exhaustive best (both must be the
// planted triple), or if the index-remapped subset hot loop allocates.
func screenExp(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: screenAuditSNPs, Samples: screenAuditSamples, Seed: screenAuditSeed,
		MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{screenAuditPlanted[0], screenAuditPlanted[1], screenAuditPlanted[2]},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		return err
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	ctx := context.Background()
	snap := screenSnapshot{
		Schema:         "trigene-screen/1",
		SNPs:           screenAuditSNPs,
		Samples:        screenAuditSamples,
		Seed:           screenAuditSeed,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Approach:       engine.V4Fused.String(),
		Reps:           screenAuditReps,
		PlantedSNPs:    screenAuditPlanted,
		SurvivorBudget: screenAuditSurvivors,
		SeedPairs:      screenAuditSeedPairs,
	}

	// Survivor recall: the stage-1 scan the screened runs below will
	// execute, probed standalone so the audit can report exactly which
	// planted SNPs the cut line keeps.
	scores, err := sess.ScreenStage1(ctx, screenAuditSeedPairs)
	if err != nil {
		return err
	}
	survivors, _, err := scores.SelectSurvivors(screenAuditSurvivors)
	if err != nil {
		return err
	}
	inSurvivors := make(map[int]bool, len(survivors))
	for _, c := range survivors {
		inSurvivors[c] = true
	}
	kept := 0
	for _, p := range screenAuditPlanted {
		if inSurvivors[p] {
			kept++
		}
	}
	snap.SurvivorRecall = float64(kept) / float64(len(screenAuditPlanted))

	// Steady-state allocations per tile of the index-remapped subset hot
	// loop — the stage-2 engine the screened search runs.
	searcher, err := engine.New(mx)
	if err != nil {
		return err
	}
	sub, err := searcher.Subset(survivors)
	if err != nil {
		return err
	}
	h, err := sub.NewHotLoop(engine.Options{Approach: engine.V4Fused, TopK: 4})
	if err != nil {
		return err
	}
	tiles := h.Tiles()
	for i := int64(0); i < tiles && i < 32; i++ {
		h.Process(h.Tile(i))
	}
	var idx int64
	snap.AllocsPerOpSubset = testing.AllocsPerRun(64, func() {
		h.Process(h.Tile(idx % tiles))
		idx++
	})
	h.Close()

	screened := []trigene.Option{
		trigene.WithApproach(trigene.V4Fused),
		trigene.WithTopK(4),
		trigene.WithScreen(trigene.ScreenSpec{
			MaxSurvivors: screenAuditSurvivors,
			SeedPairs:    screenAuditSeedPairs,
		}),
	}
	exhaustive := screened[:2]

	// Warm-up both sides, then paired reps.
	if _, err := sess.Search(ctx, exhaustive...); err != nil {
		return err
	}
	if _, err := sess.Search(ctx, screened...); err != nil {
		return err
	}
	var exhMs, scrMs, ratios, stage1Ms, stage2Ms []float64
	snap.BestMatchesExhaustive = true
	for r := 0; r < screenAuditReps; r++ {
		t0 := time.Now()
		exhRep, err := sess.Search(ctx, exhaustive...)
		if err != nil {
			return err
		}
		exhDur := time.Since(t0)
		t1 := time.Now()
		scrRep, err := sess.Search(ctx, screened...)
		if err != nil {
			return err
		}
		scrDur := time.Since(t1)

		exhMs = append(exhMs, float64(exhDur.Microseconds())/1e3)
		scrMs = append(scrMs, float64(scrDur.Microseconds())/1e3)
		ratios = append(ratios, exhDur.Seconds()/scrDur.Seconds())
		if scrRep.Screen == nil {
			return fmt.Errorf("screened report carries no Screen audit record")
		}
		stage1Ms = append(stage1Ms, float64(scrRep.Screen.Stage1Ns)/1e6)
		stage2Ms = append(stage2Ms, float64(scrRep.Screen.Stage2Ns)/1e6)
		snap.ExhaustiveTriples = exhRep.Combinations
		snap.ScreenedTriples = scrRep.Combinations
		snap.PairsScanned = scrRep.Screen.PairsScanned

		// Both sides must agree on the planted triple; a screened search
		// that prunes its way to a different answer is not a speedup.
		for i, p := range screenAuditPlanted {
			if i >= len(exhRep.Best.SNPs) || exhRep.Best.SNPs[i] != p ||
				i >= len(scrRep.Best.SNPs) || scrRep.Best.SNPs[i] != p {
				snap.BestMatchesExhaustive = false
			}
		}
	}
	snap.ExhaustiveMedianMs = median(exhMs)
	snap.ScreenedMedianMs = median(scrMs)
	snap.MedianPairedSpeedup = median(ratios)
	snap.Stage1MedianMs = median(stage1Ms)
	snap.Stage2MedianMs = median(stage2Ms)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Screened-search audit (%d SNPs x %d samples, S=%d, median of %d) -> %s ==\n",
		screenAuditSNPs, screenAuditSamples, screenAuditSurvivors, screenAuditReps, outPath)
	t := report.NewTable("", "search", "triples", "median ms")
	t.AddRowf("exhaustive V4F", snap.ExhaustiveTriples, snap.ExhaustiveMedianMs)
	t.AddRowf("screened V4F", snap.ScreenedTriples, snap.ScreenedMedianMs)
	if err := render(t); err != nil {
		return err
	}
	fmt.Fprintf(out, "median paired speedup %.2fx; %d pairs scanned, stage split %.2f/%.2f ms; recall %.0f%%, %.2f allocs/op\n",
		snap.MedianPairedSpeedup, snap.PairsScanned, snap.Stage1MedianMs, snap.Stage2MedianMs,
		snap.SurvivorRecall*100, snap.AllocsPerOpSubset)

	// The audit gates: the collapse must pay for the pair scan several
	// times over without costing the answer.
	if snap.SurvivorRecall < 1 {
		return fmt.Errorf("stage-1 screen pruned a planted SNP: recall %.2f (survivors %v)",
			snap.SurvivorRecall, survivors)
	}
	if !snap.BestMatchesExhaustive {
		return fmt.Errorf("screened best disagrees with the exhaustive best at the planted triple %v",
			screenAuditPlanted)
	}
	if snap.AllocsPerOpSubset > 0 {
		return fmt.Errorf("subset hot path allocates %.2f per tile (want 0)", snap.AllocsPerOpSubset)
	}
	if snap.MedianPairedSpeedup < 3 {
		return fmt.Errorf("screened search only %.2fx faster than exhaustive (want >= 3x: %.1f vs %.1f ms)",
			snap.MedianPairedSpeedup, snap.ExhaustiveMedianMs, snap.ScreenedMedianMs)
	}
	return nil
}

// permBatchPoint is one batch size in the sweep: the wall time of the
// full multi-candidate test with that many perm planes per kernel pass.
type permBatchPoint struct {
	Batch    int     `json:"batch"`
	MedianMs float64 `json:"medianMs"`
}

// permSnapshot is the committed BENCH_PR10.json shape.
type permSnapshot struct {
	Schema     string `json:"schema"`
	SNPs       int    `json:"snps"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Reps       int    `json:"reps"`

	Candidates   int   `json:"candidates"`
	Orders       []int `json:"orders"`
	Permutations int   `json:"permutations"`
	PermSeed     int64 `json:"permSeed"`

	ScalarMedianMs      float64 `json:"scalarMedianMs"`
	BitPlaneMedianMs    float64 `json:"bitPlaneMedianMs"`
	MedianPairedSpeedup float64 `json:"medianPairedSpeedup"`

	BatchSweep []permBatchPoint `json:"batchSweep"`

	PValuesBitExact      bool    `json:"pValuesBitExact"`
	ClusterWorkers       int     `json:"clusterWorkers"`
	ClusterTiles         int     `json:"clusterTiles"`
	ClusterBitExact      bool    `json:"clusterBitExact"`
	AllocsPerPermutation float64 `json:"allocsPerPermutation"`
}

// Permutation-kernel audit shape: enough samples that the scalar
// per-permutation table fill hurts, enough candidates that the shared
// shuffle amortizes, and mixed orders so both the Table path (2–3) and
// the CellScorer path (4+) are on the clock.
const (
	permAuditSNPs    = 96
	permAuditSamples = 4096
	permAuditSeed    = 37
	permAuditPerms   = 200
	permAuditReps    = 5
	permAuditSeedRNG = 101
)

// permAuditCandidates mixes orders 2 through 5; the first triple is the
// planted interaction.
var permAuditCandidates = [][]int{
	{11, 47, 83},
	{0, 1, 2}, {3, 20, 70}, {5, 40, 90}, {12, 48, 84}, {30, 31, 32},
	{7, 9}, {25, 60}, {44, 71},
	{2, 18, 39, 77}, {6, 28, 55, 91},
	{1, 23, 45, 67, 89},
}

// permExp audits the bit-plane permutation kernel end to end. Each rep
// runs the scalar reference path (permtest.K per candidate, the
// pre-bit-plane implementation retained as the oracle) and the batched
// multi-candidate kernel (permtest.KAll) back to back and contributes
// one scalar/bit-plane wall-time ratio; the headline speedup is the
// median of the paired ratios. Around the timing the audit checks the
// determinism contract from three angles: every bit-plane p-value must
// equal its scalar reference exactly, a loopback cluster fanning the
// permutation range over several workers must merge to the same
// numbers, and the steady-state kernel must not allocate per
// permutation (measured as the marginal allocations between a short and
// a long KAllRange call, so per-call setup cancels). The audit (and CI
// with it) fails if the kernel is not at least 5x faster, if any
// p-value diverges, or if the margin allocates.
func permExp(outPath string) error {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: permAuditSNPs, Samples: permAuditSamples, Seed: permAuditSeed,
		MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{11, 47, 83},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		return err
	}
	orders := make([]int, len(permAuditCandidates))
	for i, c := range permAuditCandidates {
		orders[i] = len(c)
	}
	snap := permSnapshot{
		Schema:       "trigene-perm/1",
		SNPs:         permAuditSNPs,
		Samples:      permAuditSamples,
		Seed:         permAuditSeed,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Reps:         permAuditReps,
		Candidates:   len(permAuditCandidates),
		Orders:       orders,
		Permutations: permAuditPerms,
		PermSeed:     permAuditSeedRNG,
	}
	// Prebuilt genotype planes, as the session API wires them in from
	// the store cache; the scalar path ignores the field.
	bin := dataset.Binarize(mx)
	cfg := permtest.Config{Permutations: permAuditPerms, Seed: permAuditSeedRNG, Planes: bin}

	scalarAll := func() ([]*permtest.Result, error) {
		res := make([]*permtest.Result, len(permAuditCandidates))
		for i, snps := range permAuditCandidates {
			r, err := permtest.K(mx, snps, cfg)
			if err != nil {
				return nil, err
			}
			res[i] = r
		}
		return res, nil
	}

	// Warm-up both sides, then paired reps; the scalar results double as
	// the bit-exactness oracle for every other check below.
	if _, err := scalarAll(); err != nil {
		return err
	}
	if _, err := permtest.KAll(mx, permAuditCandidates, cfg); err != nil {
		return err
	}
	snap.PValuesBitExact = true
	var scalarMs, planeMs, ratios []float64
	var oracle []*permtest.Result
	for r := 0; r < permAuditReps; r++ {
		t0 := time.Now()
		sres, err := scalarAll()
		if err != nil {
			return err
		}
		scalarDur := time.Since(t0)
		t1 := time.Now()
		pres, err := permtest.KAll(mx, permAuditCandidates, cfg)
		if err != nil {
			return err
		}
		planeDur := time.Since(t1)

		scalarMs = append(scalarMs, float64(scalarDur.Microseconds())/1e3)
		planeMs = append(planeMs, float64(planeDur.Microseconds())/1e3)
		ratios = append(ratios, scalarDur.Seconds()/planeDur.Seconds())
		oracle = sres
		for i := range sres {
			if *pres[i] != *sres[i] {
				snap.PValuesBitExact = false
			}
		}
	}
	snap.ScalarMedianMs = median(scalarMs)
	snap.BitPlaneMedianMs = median(planeMs)
	snap.MedianPairedSpeedup = median(ratios)

	// Batch-size sweep: the same test at pinned batch widths (0 is the
	// L1-sized default). Hit counts must not move — batch size is a
	// cache-shaping knob, not a semantic one.
	for _, b := range []int{0, 4, 8, 16, 32, 64} {
		bcfg := cfg
		bcfg.Batch = b
		var ms []float64
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			res, err := permtest.KAll(mx, permAuditCandidates, bcfg)
			if err != nil {
				return err
			}
			ms = append(ms, float64(time.Since(t0).Microseconds())/1e3)
			for i := range res {
				if *res[i] != *oracle[i] {
					snap.PValuesBitExact = false
				}
			}
		}
		snap.BatchSweep = append(snap.BatchSweep, permBatchPoint{Batch: b, MedianMs: median(ms)})
	}

	// Marginal allocations per permutation: KAllRange pays a fixed
	// per-call setup (combo planes, worker scratch), so the difference
	// between a long and a short range isolates the steady-state loop.
	probe := cfg
	probe.Workers = 1
	allocsAt := func(count int) (float64, error) {
		var perr error
		a := testing.AllocsPerRun(4, func() {
			if _, err := permtest.KAllRange(mx, permAuditCandidates, 0, count, probe); err != nil {
				perr = err
			}
		})
		return a, perr
	}
	aShort, err := allocsAt(64)
	if err != nil {
		return err
	}
	aLong, err := allocsAt(192)
	if err != nil {
		return err
	}
	snap.AllocsPerPermutation = (aLong - aShort) / 128

	// Cluster fan-out: a loopback coordinator splits the permutation
	// range over an odd tile count (uneven ranges) and several workers;
	// the merged Report must reproduce the scalar oracle bit for bit.
	co := cluster.NewCoordinator(cluster.Config{LeaseTTL: 10 * time.Second})
	srv := httptest.NewServer(co)
	defer srv.Close()
	cl := cluster.NewClient(srv.URL)
	cl.Poll = 5 * time.Millisecond
	snap.ClusterWorkers, snap.ClusterTiles = 3, 7
	cl.Tiles = snap.ClusterTiles
	wctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < snap.ClusterWorkers; i++ {
		w := &cluster.Worker{Client: cl, ID: fmt.Sprintf("perm-w%d", i), Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}
	spec := trigene.SearchSpec{Perm: &trigene.PermSpec{
		SNPs: permAuditCandidates, Permutations: permAuditPerms, Seed: permAuditSeedRNG,
	}}
	rep, err := cl.ExecutePerm(context.Background(), mx, spec)
	cancel()
	wg.Wait()
	if err != nil {
		return err
	}
	snap.ClusterBitExact = rep.Perm != nil && len(rep.Perm.Results) == len(oracle)
	if snap.ClusterBitExact {
		for i, pc := range rep.Perm.Results {
			want := oracle[i]
			if pc.Observed != want.Observed || pc.AsGoodOrBetter != want.AsGoodOrBetter || pc.PValue != want.PValue {
				snap.ClusterBitExact = false
			}
		}
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(out, "== Permutation-kernel audit (%d candidates x %d perms, %d SNPs x %d samples, median of %d) -> %s ==\n",
		len(permAuditCandidates), permAuditPerms, permAuditSNPs, permAuditSamples, permAuditReps, outPath)
	t := report.NewTable("", "path", "median ms")
	t.AddRowf("scalar reference", snap.ScalarMedianMs)
	t.AddRowf("bit-plane batched", snap.BitPlaneMedianMs)
	for _, p := range snap.BatchSweep {
		label := fmt.Sprintf("bit-plane B=%d", p.Batch)
		if p.Batch == 0 {
			label = "bit-plane B=auto"
		}
		t.AddRowf(label, p.MedianMs)
	}
	if err := render(t); err != nil {
		return err
	}
	fmt.Fprintf(out, "median paired speedup %.2fx; p-values bit-exact %v, cluster (%d workers, %d tiles) bit-exact %v, %.4f allocs/permutation\n",
		snap.MedianPairedSpeedup, snap.PValuesBitExact,
		snap.ClusterWorkers, snap.ClusterTiles, snap.ClusterBitExact, snap.AllocsPerPermutation)

	// The audit gates: the kernel must be much faster than the scalar
	// path without changing a single p-value or allocating to get there.
	if !snap.PValuesBitExact {
		return fmt.Errorf("bit-plane p-values diverge from the scalar reference")
	}
	if !snap.ClusterBitExact {
		return fmt.Errorf("cluster-merged p-values diverge from the scalar reference")
	}
	if snap.AllocsPerPermutation > 0.01 {
		return fmt.Errorf("steady-state kernel allocates %.4f per permutation (want 0)", snap.AllocsPerPermutation)
	}
	if snap.MedianPairedSpeedup < 5 {
		return fmt.Errorf("bit-plane kernel only %.2fx faster than scalar (want >= 5x: %.1f vs %.1f ms)",
			snap.MedianPairedSpeedup, snap.ScalarMedianMs, snap.BitPlaneMedianMs)
	}
	return nil
}

// maxRate of a non-empty sample.
func maxRate(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
