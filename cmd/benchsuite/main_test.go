package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runExp(t *testing.T, args ...string) string {
	t.Helper()
	var out, errBuf bytes.Buffer
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestFig2aOutput(t *testing.T) {
	s := runExp(t, "-exp", "fig2a")
	for _, want := range []string{
		"Figure 2a", "Int32 Vector ADD Peak", "L3->C", "V1", "V4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("fig2a output missing %q", want)
		}
	}
}

func TestFig2bOutput(t *testing.T) {
	s := runExp(t, "-exp", "fig2b")
	for _, want := range []string{"Figure 2b", "POPCNT Peak", "transactions"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig2b output missing %q", want)
		}
	}
}

func TestFig3Fig4Output(t *testing.T) {
	s3 := runExp(t, "-exp", "fig3")
	for _, want := range []string{"CI3 AVX512", "CA1 AVX", "(a)", "(b)", "(c)"} {
		if !strings.Contains(s3, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
	s4 := runExp(t, "-exp", "fig4")
	for _, want := range []string{"GN1 Pascal", "GA3 RDNA2", "stream core"} {
		if !strings.Contains(s4, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	s := runExp(t, "-exp", "table3", "-host-snps", "32", "-host-samples", "512")
	for _, want := range []string{
		"Table III", "MPI3SNP", "Nobre et al. [29]", "Campos et al. [30]",
		"host-measured cross-check", "this work V4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestOverallOutput(t *testing.T) {
	s := runExp(t, "-exp", "overall")
	for _, want := range []string{"Section V-D", "heterogeneous CI3+GN1", "G elem/J"} {
		if !strings.Contains(s, want) {
			t.Errorf("overall output missing %q", want)
		}
	}
}

func TestHostOutput(t *testing.T) {
	s := runExp(t, "-exp", "host", "-host-snps", "24", "-host-samples", "256")
	for _, want := range []string{"Host-measured", "V1", "V4", "speedup vs V1"} {
		if !strings.Contains(s, want) {
			t.Errorf("host output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "fig9"}, &out, &errBuf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errBuf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestEnergyOutput(t *testing.T) {
	s := runExp(t, "-exp", "energy")
	for _, want := range []string{"DVFS energy study", "optimal GHz", "GI2 DVFS sweep"} {
		if !strings.Contains(s, want) {
			t.Errorf("energy output missing %q", want)
		}
	}
}

func TestSnapshotOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	s := runExp(t, "-exp", "snapshot", "-out", path)
	if !strings.Contains(s, "Perf snapshot") {
		t.Errorf("snapshot table missing:\n%s", s)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Schema != "trigene-bench/1" || snap.SNPs != snapSNPs || snap.Samples != snapSamples {
		t.Errorf("snapshot header wrong: %+v", snap)
	}
	want := map[string]bool{"V1": false, "V2": false, "V3": false, "V4": false, "mpi3snp": false}
	for _, p := range snap.Points {
		want[p.Approach] = true
		if p.CombosPerSec <= 0 || p.Combinations <= 0 {
			t.Errorf("point %+v has empty throughput", p)
		}
	}
	for ap, seen := range want {
		if !seen {
			t.Errorf("approach %s missing from snapshot", ap)
		}
	}
}

// TestPlanOutput: the autotuning audit writes the snapshot and passes
// its own sanity gate.
func TestPlanOutput(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "plan.json")
	s := runExp(t, "-exp", "plan", "-out", outPath)
	if !strings.Contains(s, "Autotuning prediction audit") {
		t.Errorf("missing header:\n%s", s)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap planSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "trigene-plan/1" || len(snap.Points) != 3 {
		t.Errorf("snapshot: schema=%q points=%d", snap.Schema, len(snap.Points))
	}
	for _, p := range snap.Points {
		if p.PredictedTilesPerSec <= 0 || p.MeasuredTilesPerSec <= 0 || p.Grain <= 0 {
			t.Errorf("point %+v not populated", p)
		}
	}
}

// TestKernelsOutput: the fused-kernel audit writes the snapshot and
// passes its own fused-beats-unfused gate.
func TestKernelsOutput(t *testing.T) {
	if raceEnabled {
		// Race instrumentation multiplies every pair-plane load, so the
		// fused-vs-unfused timing gate measures the detector, not the
		// kernels. The un-instrumented CI step "fused kernel audit"
		// still enforces it.
		t.Skip("fused-kernel timing gate is meaningless under -race")
	}
	outPath := filepath.Join(t.TempDir(), "kernels.json")
	s := runExp(t, "-exp", "kernels", "-out", outPath)
	if !strings.Contains(s, "Fused-kernel audit") {
		t.Errorf("missing header:\n%s", s)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap kernelsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "trigene-kernels/1" || len(snap.Points) != 12 {
		t.Errorf("snapshot: schema=%q points=%d", snap.Schema, len(snap.Points))
	}
	want := map[string]bool{"V3": false, "V3F": false, "V4": false, "V4F": false}
	for _, p := range snap.Points {
		want[p.Approach] = true
		if p.GElemsPerSec <= 0 || p.BlockSNPs <= 0 || p.BlockWords <= 0 {
			t.Errorf("point %+v not populated", p)
		}
	}
	for ap, seen := range want {
		if !seen {
			t.Errorf("approach %s missing from snapshot", ap)
		}
	}
	if snap.SpeedupV4F <= 1 {
		t.Errorf("fused V4F speedup %.3f, want > 1", snap.SpeedupV4F)
	}
}
