// datagen generates synthetic case-control SNP datasets in the trigene
// text, binary or packed .tpack format, optionally planting a
// third-order interaction.
//
// Usage:
//
//	datagen -snps 1000 -samples 4000 -seed 1 -out data.tg
//	datagen -snps 256 -samples 2048 -interact 10,70,200 -model xor -out planted.tgb -format binary
//	datagen -snps 1000 -samples 4000 -out data.tpack -format pack   # pre-encoded; searches start in ms
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"trigene"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the testable tool body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	snps := fs.Int("snps", 1000, "number of SNPs (M)")
	samples := fs.Int("samples", 4000, "number of samples (N)")
	seed := fs.Int64("seed", 1, "RNG seed")
	mafMin := fs.Float64("maf-min", 0.05, "minimum minor allele frequency")
	mafMax := fs.Float64("maf-max", 0.5, "maximum minor allele frequency")
	prevalence := fs.Float64("prevalence", 0.5, "baseline case probability")
	interact := fs.String("interact", "", "plant an interaction at SNPs \"i,j,k\"")
	model := fs.String("model", "threshold", "penetrance model: threshold, xor or multiplicative")
	low := fs.Float64("low", 0.1, "low case probability of the penetrance model")
	high := fs.Float64("high", 0.9, "high case probability of the penetrance model")
	out := fs.String("out", "", "output path (default stdout)")
	format := fs.String("format", "text", "output format: text, binary or pack (pre-encoded .tpack)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trigene.GenConfig{
		SNPs: *snps, Samples: *samples, Seed: *seed,
		MAFMin: *mafMin, MAFMax: *mafMax, Prevalence: *prevalence,
	}
	if *interact != "" {
		triple, err := parseTriple(*interact)
		if err != nil {
			return err
		}
		var pen [27]float64
		switch *model {
		case "threshold":
			pen = trigene.ThresholdPenetrance(3, *low, *high)
		case "xor":
			pen = trigene.XorPenetrance(*low, *high)
		case "multiplicative":
			pen = multiplicative(*low, *high)
		default:
			return fmt.Errorf("unknown penetrance model %q", *model)
		}
		cfg.Interaction = &trigene.Interaction{SNPs: triple, Penetrance: pen}
	}

	mx, err := trigene.Generate(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	switch *format {
	case "text":
		err = trigene.WriteText(w, mx)
	case "binary":
		err = trigene.WriteBinary(w, mx)
	case "pack":
		var sess *trigene.Session
		if sess, err = trigene.NewSession(mx); err == nil {
			err = sess.WritePack(w)
		}
	default:
		err = fmt.Errorf("unknown format %q (want text, binary or pack)", *format)
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	controls, cases := mx.ClassCounts()
	fmt.Fprintf(stderr, "wrote %d SNPs x %d samples (%d controls / %d cases)\n",
		mx.SNPs(), mx.Samples(), controls, cases)
	return nil
}

func parseTriple(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("-interact needs three comma-separated SNP indices, got %q", s)
	}
	var t [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return t, fmt.Errorf("bad SNP index %q: %v", p, err)
		}
		t[i] = v
	}
	return t, nil
}

// multiplicative scales risk with the minor-allele count, from low at
// zero alleles toward high at six.
func multiplicative(low, high float64) [27]float64 {
	factor := 1.0
	if low > 0 {
		factor = math.Pow(high/low, 1.0/6)
	}
	var t [27]float64
	for combo := 0; combo < 27; combo++ {
		sum := combo/9 + combo/3%3 + combo%3
		p := low
		for a := 0; a < sum; a++ {
			p *= factor
		}
		if p > 1 {
			p = 1
		}
		t[combo] = p
	}
	return t
}
