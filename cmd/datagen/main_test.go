package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trigene"
)

func TestRunTextToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-snps", "10", "-samples", "40", "-seed", "3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := trigene.ReadText(&out)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if mx.SNPs() != 10 || mx.Samples() != 40 {
		t.Errorf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
	if !strings.Contains(errBuf.String(), "wrote 10 SNPs x 40 samples") {
		t.Errorf("summary missing: %q", errBuf.String())
	}
}

func TestRunBinaryToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.tgb")
	var out, errBuf bytes.Buffer
	err := run([]string{"-snps", "8", "-samples", "30", "-seed", "4",
		"-format", "binary", "-out", path}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mx, err := trigene.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 8 || mx.Samples() != 30 {
		t.Errorf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
}

func TestRunPlantedInteraction(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-snps", "20", "-samples", "800", "-seed", "5",
		"-interact", "2,9,15", "-model", "threshold", "-maf-min", "0.3", "-maf-max", "0.5"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := trigene.ReadText(&out)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Search(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 9, 15}
	for i, s := range rep.Best.SNPs {
		if s != want[i] {
			t.Errorf("planted triple not recovered: %v", rep.Best.SNPs)
			break
		}
	}
}

func TestRunModels(t *testing.T) {
	for _, model := range []string{"threshold", "xor", "multiplicative"} {
		var out, errBuf bytes.Buffer
		err := run([]string{"-snps", "6", "-samples", "50", "-seed", "6",
			"-interact", "0,2,4", "-model", model}, &out, &errBuf)
		if err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-snps", "2"},                            // too few SNPs
		{"-interact", "1,2"},                      // malformed triple
		{"-interact", "1,x,3"},                    // bad index
		{"-interact", "1,2,99", "-snps", "10"},    // out of range
		{"-model", "bogus", "-interact", "1,2,3"}, // unknown model
		{"-format", "bogus"},                      // unknown format
		{"-out", "/nonexistent-dir/xx/data.tg"},   // unwritable path
		{"-maf-min", "0.4", "-maf-max", "0.2"},    // bad MAF range
		{"-badflag"},                              // flag error
	}
	for i, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestMultiplicativeTable(t *testing.T) {
	tab := multiplicative(0.1, 0.9)
	if tab[0] != 0.1 {
		t.Errorf("base = %g", tab[0])
	}
	// Index 26 = six minor alleles: low * (high/low) = high.
	if d := tab[26] - 0.9; d > 1e-9 || d < -1e-9 {
		t.Errorf("top = %g, want 0.9", tab[26])
	}
	// Degenerate low=0 stays flat at zero.
	flat := multiplicative(0, 0.5)
	if flat[13] != 0 {
		t.Errorf("flat table broken: %g", flat[13])
	}
}
