package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trigene"
)

// startDaemon runs `trigened serve` on an ephemeral port and returns
// the scraped base URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-quiet", "-lease-ttl", "5s"}, pw, io.Discard)
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading serve banner: %v", err)
	}
	url, ok := strings.CutPrefix(strings.TrimSpace(line), "serving on ")
	if !ok {
		t.Fatalf("unexpected serve banner %q", line)
	}
	go io.Copy(io.Discard, pr)
	return url
}

// startCLIWorkers runs n `trigened worker` loops against the daemon.
func startCLIWorkers(t *testing.T, url string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(ctx, []string{"worker", "-coordinator", url, "-poll", "5ms", "-quiet"},
				io.Discard, io.Discard); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// writeDataset writes the planted test dataset to disk in the trigene
// text format and returns its path and matrix.
func writeDataset(t *testing.T) (string, *trigene.Matrix) {
	t.Helper()
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 24, Samples: 900, Seed: 11, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{3, 9, 15},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.tg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trigene.WriteText(f, mx); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, mx
}

// TestTrigenedEndToEnd drives the full CLI surface against an
// in-process daemon: submit -wait prints a Report bit-exact with the
// local run, status sees the finished job, and result re-prints the
// same JSON.
func TestTrigenedEndToEnd(t *testing.T) {
	url := startDaemon(t)
	startCLIWorkers(t, url, 2)
	path, mx := writeDataset(t)
	ctx := context.Background()

	var out bytes.Buffer
	err := run(ctx, []string{"submit", "-coordinator", url, "-in", path,
		"-name", "e2e", "-tiles", "5", "-topk", "4", "-workers", "2", "-wait"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(out.String(), "\n", 2)
	if !strings.HasPrefix(lines[0], "submitted j") {
		t.Fatalf("submit banner %q", lines[0])
	}
	jobID := strings.Fields(lines[0])[1]
	var rep trigene.Report
	if err := json.Unmarshal([]byte(lines[1]), &rep); err != nil {
		t.Fatalf("submit -wait output is not a Report: %v\n%s", err, lines[1])
	}

	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, trigene.WithTopK(4), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopK) != 4 || rep.Best.Score != local.Best.Score || rep.Combinations != local.Combinations {
		t.Errorf("cluster report %v/%d, local %v/%d",
			rep.Best.SNPs, rep.Combinations, local.Best.SNPs, local.Combinations)
	}
	for i := range local.TopK {
		if rep.TopK[i].Score != local.TopK[i].Score {
			t.Errorf("top-%d score %.12f != %.12f", i+1, rep.TopK[i].Score, local.TopK[i].Score)
		}
	}

	// status: the queue and the single job both show it done.
	out.Reset()
	if err := run(ctx, []string{"status", "-coordinator", url}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "e2e") || !strings.Contains(out.String(), "done") {
		t.Errorf("status output:\n%s", out.String())
	}
	out.Reset()
	if err := run(ctx, []string{"status", "-coordinator", url, "-job", jobID, "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var st struct {
		State string `json:"state"`
		Done  int    `json:"done"`
	}
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Done != 5 {
		t.Errorf("status -json: %+v", st)
	}

	// result: byte-identical Report JSON to the submit -wait output.
	out.Reset()
	if err := run(ctx, []string{"result", "-coordinator", url, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.String() != lines[1] {
		t.Errorf("result output differs from submit -wait output:\n%s\n%s", out.String(), lines[1])
	}
}

// TestTrigenedCancel: a job with no workers is cancelled and reports
// it.
func TestTrigenedCancel(t *testing.T) {
	url := startDaemon(t)
	path, _ := writeDataset(t)
	ctx := context.Background()

	var out bytes.Buffer
	if err := run(ctx, []string{"submit", "-coordinator", url, "-in", path, "-tiles", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	jobID := strings.Fields(out.String())[1]
	out.Reset()
	if err := run(ctx, []string{"cancel", "-coordinator", url, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(ctx, []string{"status", "-coordinator", url, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cancelled") {
		t.Errorf("status after cancel:\n%s", out.String())
	}
	if err := run(ctx, []string{"result", "-coordinator", url, "-job", jobID}, io.Discard, io.Discard); err == nil {
		t.Error("result of a cancelled job succeeded")
	}
}

// TestTrigenedErrors covers the CLI's loud failures.
func TestTrigenedErrors(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		{},
		{"bogus-mode"},
		{"worker"},                      // missing -coordinator
		{"submit", "-in", "x"},          // missing -coordinator
		{"submit", "-coordinator", "x"}, // missing -in
		{"result", "-coordinator", "x"}, // missing -job
		{"cancel", "-coordinator", "x"}, // missing -job
		{"status"},                      // missing -coordinator
	}
	for _, args := range cases {
		if err := run(ctx, args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// help is not an error.
	if err := run(ctx, []string{"help"}, io.Discard, io.Discard); err != nil {
		t.Errorf("help: %v", err)
	}
}

// startDurableDaemon runs `trigened serve -state-dir` on the given
// address and returns the scraped base URL plus an explicit stop (also
// registered as cleanup) so a test can restart the daemon mid-job.
func startDurableDaemon(t *testing.T, addr, stateDir string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", addr, "-quiet", "-lease-ttl", "2s",
			"-retain", "8", "-state-dir", stateDir}, pw, io.Discard)
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading serve banner: %v", err)
	}
	url, ok := strings.CutPrefix(strings.TrimSpace(line), "serving on ")
	if !ok {
		t.Fatalf("unexpected serve banner %q", line)
	}
	go io.Copy(io.Discard, pr)
	// The daemon listens (and answers health probes) before journal
	// recovery finishes; wait for readiness so a submit right after the
	// banner does not race the recovering coordinator's 503s.
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/healthz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatal("daemon never became ready on /v1/healthz")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	t.Cleanup(stop)
	return url, stop
}

// TestTrigenedRestartRecovery is the CLI acceptance path for the
// durable coordinator: a daemon with -state-dir goes down mid-job and
// a fresh daemon on the same state dir (and address, so the CLI
// workers reconnect on their own) finishes the job to a Report
// bit-exact with the local run.
func TestTrigenedRestartRecovery(t *testing.T) {
	stateDir := t.TempDir()
	path, mx := writeDataset(t)
	ctx := context.Background()

	url, stop := startDurableDaemon(t, "127.0.0.1:0", stateDir)
	startCLIWorkers(t, url, 2)

	var out bytes.Buffer
	err := run(ctx, []string{"submit", "-coordinator", url, "-in", path,
		"-name", "durable", "-tiles", "6", "-topk", "4", "-workers", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	jobID := strings.Fields(out.String())[1]

	// Wait for partial progress, then take the daemon down mid-job.
	waitStatus := func(url string, pred func(state string, done int) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			out.Reset()
			err := run(ctx, []string{"status", "-coordinator", url, "-job", jobID, "-json"}, &out, io.Discard)
			if err == nil {
				var st struct {
					State string `json:"state"`
					Done  int    `json:"done"`
				}
				if err := json.Unmarshal(out.Bytes(), &st); err != nil {
					t.Fatal(err)
				}
				if st.State == "failed" || st.State == "cancelled" {
					t.Fatalf("job %s %s while waiting for %s", jobID, st.State, what)
				}
				if pred(st.State, st.Done) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitStatus(url, func(_ string, done int) bool { return done >= 1 }, "partial progress")
	stop()

	// Same address, same state dir: the workers' retry loops reconnect
	// and the recovered queue finishes the job.
	url2, _ := startDurableDaemon(t, strings.TrimPrefix(url, "http://"), stateDir)
	if url2 != url {
		t.Fatalf("restarted daemon at %s, want %s", url2, url)
	}
	waitStatus(url2, func(state string, _ int) bool { return state == "done" }, "completion after restart")

	out.Reset()
	if err := run(ctx, []string{"result", "-coordinator", url2, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var rep trigene.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("result output is not a Report: %v\n%s", err, out.String())
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, trigene.WithTopK(4), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopK) != len(local.TopK) || rep.Combinations != local.Combinations {
		t.Fatalf("recovered report %d combinations / top-%d, local %d / top-%d",
			rep.Combinations, len(rep.TopK), local.Combinations, len(local.TopK))
	}
	for i := range local.TopK {
		if rep.TopK[i].Score != local.TopK[i].Score {
			t.Errorf("top-%d score %.12f != %.12f", i+1, rep.TopK[i].Score, local.TopK[i].Score)
		}
	}

	// The state dir has the advertised layout.
	if _, err := os.Stat(filepath.Join(stateDir, "snapshot.snap")); err != nil {
		t.Errorf("snapshot missing from state dir: %v", err)
	}
	if matches, _ := filepath.Glob(filepath.Join(stateDir, "journal-*.wal")); len(matches) != 1 {
		t.Errorf("journal files in state dir: %v", matches)
	}

	// status -workers reports heartbeat ages for the reconnected fleet.
	out.Reset()
	if err := run(ctx, []string{"status", "-coordinator", url2, "-workers"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seen") || !strings.Contains(out.String(), "ago") {
		t.Errorf("status -workers output lacks heartbeat ages:\n%s", out.String())
	}
}

// TestTrigenedPermSubmit: a -perm job runs end to end against CLI
// workers — submit prints the permutation banner, status sees the job
// through, and the result's perm block is bit-exact with the local
// bit-plane kernel. Bad perm specs fail loudly before upload.
func TestTrigenedPermSubmit(t *testing.T) {
	url := startDaemon(t)
	startCLIWorkers(t, url, 2)
	path, mx := writeDataset(t)
	ctx := context.Background()

	var out bytes.Buffer
	err := run(ctx, []string{"submit", "-coordinator", url, "-in", path,
		"-name", "perm", "-tiles", "5", "-workers", "2",
		"-perm", "3,9,15;0,1", "-perms", "200", "-perm-seed", "17", "-wait"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(out.String(), "\n", 2)
	if !strings.Contains(lines[0], "2 candidates, 200 permutations over 5 tiles") {
		t.Errorf("submit banner %q", lines[0])
	}
	jobID := strings.Fields(lines[0])[1]
	var rep trigene.Report
	if err := json.Unmarshal([]byte(lines[1]), &rep); err != nil {
		t.Fatalf("submit -wait output is not a Report: %v\n%s", err, lines[1])
	}
	if rep.Perm == nil {
		t.Fatal("merged Report has no perm block")
	}
	if rep.Perm.Permutations != 200 || rep.Perm.Seed != 17 || rep.Perm.Tiles != 5 {
		t.Errorf("perm block %d permutations seed %d over %d tiles, want 200/17/5",
			rep.Perm.Permutations, rep.Perm.Seed, rep.Perm.Tiles)
	}

	// Bit-exact with the local batched kernel under the same seed.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.PermutationTestAll(ctx, [][]int{{3, 9, 15}, {0, 1}},
		trigene.WithPermutations(200), trigene.WithSeed(17), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Perm.Results) != len(local) {
		t.Fatalf("perm block carries %d results, want %d", len(rep.Perm.Results), len(local))
	}
	for i, pc := range rep.Perm.Results {
		if pc.Observed != local[i].Observed || pc.AsGoodOrBetter != local[i].AsGoodOrBetter || pc.PValue != local[i].PValue {
			t.Errorf("candidate %v: cluster %+v != local %+v", pc.SNPs, pc, *local[i])
		}
	}

	// status and result agree on the finished job.
	out.Reset()
	if err := run(ctx, []string{"status", "-coordinator", url, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("status output:\n%s", out.String())
	}
	out.Reset()
	if err := run(ctx, []string{"result", "-coordinator", url, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.String() != lines[1] {
		t.Errorf("result output differs from submit -wait output:\n%s\n%s", out.String(), lines[1])
	}

	// Loud client-side validation: nothing is uploaded for a bad spec.
	for _, args := range [][]string{
		{"submit", "-coordinator", url, "-in", path, "-perm", " ; "},
		{"submit", "-coordinator", url, "-in", path, "-perm", "9,3"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3,900"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3;9"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3,x"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3,9", "-screen-survivors", "10"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3,9", "-order", "4"},
		{"submit", "-coordinator", url, "-in", path, "-perm", "3,9", "-backend", "hetero"},
	} {
		if err := run(ctx, args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args[5:])
		}
	}
}

// TestTrigenedPermRestartRecovery: a durable coordinator goes down with
// a permutation job in flight; a fresh daemon on the same state dir and
// address recovers the journaled per-range scores and finishes the job
// to p-values bit-exact with the local run.
func TestTrigenedPermRestartRecovery(t *testing.T) {
	stateDir := t.TempDir()
	path, mx := writeDataset(t)
	ctx := context.Background()

	url, stop := startDurableDaemon(t, "127.0.0.1:0", stateDir)
	startCLIWorkers(t, url, 2)

	var out bytes.Buffer
	err := run(ctx, []string{"submit", "-coordinator", url, "-in", path,
		"-name", "perm-durable", "-tiles", "8", "-workers", "2",
		"-perm", "3,9,15;2,5,7,11", "-perms", "400", "-perm-seed", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	jobID := strings.Fields(out.String())[1]

	waitStatus := func(url string, pred func(state string, done int) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			out.Reset()
			err := run(ctx, []string{"status", "-coordinator", url, "-job", jobID, "-json"}, &out, io.Discard)
			if err == nil {
				var st struct {
					State string `json:"state"`
					Done  int    `json:"done"`
				}
				if err := json.Unmarshal(out.Bytes(), &st); err != nil {
					t.Fatal(err)
				}
				if st.State == "failed" || st.State == "cancelled" {
					t.Fatalf("job %s %s while waiting for %s", jobID, st.State, what)
				}
				if pred(st.State, st.Done) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitStatus(url, func(_ string, done int) bool { return done >= 1 }, "partial progress")
	stop()

	url2, _ := startDurableDaemon(t, strings.TrimPrefix(url, "http://"), stateDir)
	if url2 != url {
		t.Fatalf("restarted daemon at %s, want %s", url2, url)
	}
	waitStatus(url2, func(state string, _ int) bool { return state == "done" }, "completion after restart")

	out.Reset()
	if err := run(ctx, []string{"result", "-coordinator", url2, "-job", jobID}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var rep trigene.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("result output is not a Report: %v\n%s", err, out.String())
	}
	if rep.Perm == nil {
		t.Fatal("recovered Report has no perm block")
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.PermutationTestAll(ctx, [][]int{{3, 9, 15}, {2, 5, 7, 11}},
		trigene.WithPermutations(400), trigene.WithSeed(5), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Perm.Results) != len(local) {
		t.Fatalf("perm block carries %d results, want %d", len(rep.Perm.Results), len(local))
	}
	for i, pc := range rep.Perm.Results {
		if pc.Observed != local[i].Observed || pc.AsGoodOrBetter != local[i].AsGoodOrBetter || pc.PValue != local[i].PValue {
			t.Errorf("candidate %v: recovered %+v != local %+v", pc.SNPs, pc, *local[i])
		}
	}
}

// TestTrigenedScreenedSubmit: a -screen-survivors job runs as two
// phases end to end against CLI workers, the merged Report carries
// the screen audit trail, and bad screen specs fail loudly before
// the dataset is uploaded.
func TestTrigenedScreenedSubmit(t *testing.T) {
	url := startDaemon(t)
	startCLIWorkers(t, url, 2)
	path, mx := writeDataset(t)
	ctx := context.Background()

	var out bytes.Buffer
	err := run(ctx, []string{"submit", "-coordinator", url, "-in", path,
		"-name", "screened", "-tiles", "4", "-topk", "4", "-workers", "2",
		"-screen-survivors", "10", "-wait"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(out.String(), "\n", 2)
	if !strings.Contains(lines[0], "screen tiles") {
		t.Errorf("submit banner %q lacks the screen phase", lines[0])
	}
	var rep trigene.Report
	if err := json.Unmarshal([]byte(lines[1]), &rep); err != nil {
		t.Fatalf("submit -wait output is not a Report: %v\n%s", err, lines[1])
	}
	if rep.Screen == nil {
		t.Fatal("merged Report has no screen audit trail")
	}
	if rep.Screen.Survivors != 10 {
		t.Errorf("screen survivors %d, want 10", rep.Screen.Survivors)
	}

	// The screened cluster run must agree with the screened local run.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, trigene.WithTopK(4), trigene.WithWorkers(2),
		trigene.WithScreen(trigene.ScreenSpec{MaxSurvivors: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Score != local.Best.Score {
		t.Errorf("cluster best %v (%.12f), local %v (%.12f)",
			rep.Best.SNPs, rep.Best.Score, local.Best.SNPs, local.Best.Score)
	}

	// Loud client-side validation: nothing is uploaded for a bad spec.
	for _, args := range [][]string{
		{"submit", "-coordinator", url, "-in", path, "-screen-survivors", "-2"},
		{"submit", "-coordinator", url, "-in", path, "-screen-survivors", "1000"},
		{"submit", "-coordinator", url, "-in", path, "-screen-seeds", "3"},
	} {
		if err := run(ctx, args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args[5:])
		}
	}
}
