// trigened is the cluster service daemon: one binary fronting every
// role of the distributed tile-leasing deployment.
//
//	trigened serve  -addr :9321                 # run the coordinator
//	trigened serve  -addr :9321 -state-dir /var/lib/trigene  # durable: journal + snapshots
//	trigened worker -coordinator http://c:9321  # contribute a worker
//	trigened worker -coordinator http://c:9321 -capacity 8          # weighted leasing
//	trigened worker -coordinator http://c:9321 -cache-entries 8 -cache-dir /var/cache/trigene
//	trigened pack   -in data.tg -out data.tpack # pre-encode a dataset offline
//	trigened submit -coordinator http://c:9321 -in data.tg -tiles 64 -name scan1
//	trigened submit -coordinator http://c:9321 -in data.tg -auto    # plan-aware job
//	trigened submit -coordinator http://c:9321 -in data.tg -wait    # block, print the Report
//	trigened submit -coordinator http://c:9321 -in data.tg -screen-survivors 128  # two-stage screened job
//	trigened submit -coordinator http://c:9321 -in data.tg -perm "3,9,15;0,1" -perms 10000  # distributed permutation test
//	trigened status -coordinator http://c:9321 [-job j1]            # queue / one job
//	trigened status -coordinator http://c:9321 -workers             # capability registry
//	trigened result -coordinator http://c:9321 -job j1              # merged Report JSON
//	trigened cancel -coordinator http://c:9321 -job j1
//
// A job is one Session.Search configuration cut into tiles; workers
// lease tiles under heartbeat-renewed deadlines and the coordinator
// merges their Reports bit-exactly (see the README's "Cluster
// architecture" section). `trigened result` emits the same stable
// Report JSON as `epistasis -json`. A screened job
// (-screen-survivors) runs as two phases: the pairwise pre-scan is
// sharded across workers first, the coordinator merges the scan and
// pins the survivor set, and only then do stage-2 triple tiles lease
// out; the merged Report carries the audit trail under "screen". A
// permutation job (-perm) shards the permutation index range instead:
// workers evaluate contiguous relabeling ranges with the bit-plane
// kernel and the coordinator sums their hit counts into p-values
// bit-exact with a single-node run (the result's "perm" block).
//
// With -state-dir the coordinator is durable: every state transition
// is journaled, and a crashed (even SIGKILLed) coordinator restarted
// on the same directory resumes its jobs without re-executing
// completed tiles. Workers drain elastically: the first SIGTERM lets
// the current tile batch finish, hands remaining leases back for
// immediate re-issue and exits 0; a second SIGTERM (or SIGINT)
// cancels outright.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"trigene"
	"trigene/internal/cluster"
	"trigene/internal/datafile"
	"trigene/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trigened: ")
	// Workers intercept SIGTERM themselves (first drains, second
	// cancels — see runWorker); every other mode treats it as a stop.
	sigs := []os.Signal{os.Interrupt, syscall.SIGTERM}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		sigs = []os.Signal{os.Interrupt}
	}
	ctx, stop := signal.NotifyContext(context.Background(), sigs...)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the testable tool body.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing mode")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "serve":
		return runServe(ctx, rest, stdout, stderr)
	case "worker":
		return runWorker(ctx, rest, stdout, stderr)
	case "pack":
		return runPack(rest, stdout, stderr)
	case "submit":
		return runSubmit(ctx, rest, stdout, stderr)
	case "status":
		return runStatus(ctx, rest, stdout, stderr)
	case "result":
		return runResult(ctx, rest, stdout, stderr)
	case "cancel":
		return runCancel(ctx, rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: trigened <mode> [flags]

modes:
  serve    run the coordinator (job queue + tile leases)
  worker   lease and execute tiles against a coordinator
  pack     pre-encode a dataset into the packed .tpack format
  submit   submit a dataset + search spec as a job
  status   show the job queue, or one job
  result   print a finished job's merged Report JSON
  cancel   cancel a running job

run "trigened <mode> -h" for that mode's flags.`)
}

// ---------------------------------------------------------------------
// serve

// newLogger builds a structured daemon logger from the -log-level and
// -log-format flag values.
func newLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// discardLogger suppresses daemon logging (-quiet).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// healthzHandler answers GET /v1/healthz from the probe callback:
// 200 {"status":"ok"} when ready, 503 with the probe's status (e.g.
// "starting", "draining") when not, so orchestrators can gate traffic
// on readiness rather than on mere liveness.
func healthzHandler(probe func() (status string, ready bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		status, ready := probe()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
}

// serveDebug exposes net/http/pprof on its own listener (empty addr =
// off). Registration is explicit so the profiling surface never leaks
// onto the service address.
func serveDebug(addr string, logger *slog.Logger) error {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	logger.Info("pprof debug server listening", "addr", ln.Addr().String())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Warn("debug server exited", "error", err)
		}
	}()
	return nil
}

func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":9321", "listen address")
	ttl := fs.Duration("lease-ttl", 15*time.Second, "tile lease duration; workers renew at a third of it")
	attempts := fs.Int("max-attempts", 5, "lease re-issues per tile before the job fails")
	retain := fs.Int("retain", 64, "finished jobs kept (with results) before eviction")
	stateDir := fs.String("state-dir", "", "durability root: journal every state transition there and recover from it on start (empty = in-memory)")
	snapEvery := fs.Int("snapshot-every", 256, "journal records between state snapshots (with -state-dir)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this extra address (empty = off)")
	quiet := fs.Bool("quiet", false, "suppress per-event logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *quiet {
		logger = discardLogger()
	}
	cfg := cluster.Config{
		LeaseTTL:      *ttl,
		MaxAttempts:   *attempts,
		Retain:        *retain,
		Logger:        logger,
		StateDir:      *stateDir,
		SnapshotEvery: *snapEvery,
	}
	reg := obs.NewRegistry()
	// Listen (and answer health probes) before recovery: a durable
	// coordinator replaying a long journal reports "starting" on
	// /v1/healthz instead of refusing connections.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable (tests and scripts
	// bind to port 0 and scrape it).
	fmt.Fprintf(stdout, "serving on http://%s\n", ln.Addr())
	var coord atomic.Pointer[cluster.Coordinator]
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/v1/healthz", healthzHandler(func() (string, bool) {
		if coord.Load() == nil {
			return "starting", false
		}
		return "ok", true
	}))
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		co := coord.Load()
		if co == nil {
			http.Error(w, "coordinator recovering", http.StatusServiceUnavailable)
			return
		}
		co.ServeHTTP(w, req)
	})
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var co *cluster.Coordinator
	if *stateDir != "" {
		if co, err = cluster.Recover(cfg); err != nil {
			srv.Close()
			return err
		}
		defer co.Close()
	} else {
		co = cluster.NewCoordinator(cfg)
	}
	// Instrument after recovery so WAL replay does not count as live
	// traffic; publishing the pointer flips /v1/healthz to ready.
	co.Instrument(reg)
	coord.Store(co)
	if err := serveDebug(*debugAddr, logger); err != nil {
		srv.Close()
		return err
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			// The graceful drain ran out of patience — typically a
			// connection a client transport dialed but never used,
			// which Shutdown only reaps after a long grace period.
			// Force-close the stragglers; all real requests had their
			// two seconds.
			return srv.Close()
		}
		return nil
	}
}

// ---------------------------------------------------------------------
// worker

func runWorker(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	id := fs.String("id", "", "worker name in coordinator logs (default host:pid)")
	capacity := fs.Float64("capacity", 0, "advertised relative capability for weighted leasing (0 = this host's core count); fast workers get proportionally bigger tile batches")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
	cacheEntries := fs.Int("cache-entries", 4, "bound of the in-memory per-dataset Session LRU")
	cacheDir := fs.String("cache-dir", "", "directory persisting fetched datasets as <hash>.tpack (empty = off)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /v1/healthz on this address (empty = off)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this extra address (empty = off)")
	quiet := fs.Bool("quiet", false, "suppress per-tile logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		fs.Usage()
		return fmt.Errorf("missing required -coordinator")
	}
	if *capacity == 0 {
		*capacity = float64(runtime.GOMAXPROCS(0))
	}
	if *capacity < 0 {
		return fmt.Errorf("capacity must be positive, got %g", *capacity)
	}
	logger, err := newLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *quiet {
		logger = discardLogger()
	}
	if *cacheEntries < 1 {
		return fmt.Errorf("cache-entries must be at least 1, got %d", *cacheEntries)
	}
	w := &cluster.Worker{
		Client:       cluster.NewClient(*coord),
		ID:           *id,
		Capacity:     *capacity,
		Poll:         *poll,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		Logger:       logger,
	}
	reg := obs.NewRegistry()
	w.Instrument(reg)
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/v1/healthz", healthzHandler(func() (string, bool) {
			if w.Draining() {
				return "draining", false
			}
			return "ok", true
		}))
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "metrics on http://%s\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				logger.Warn("metrics server exited", "error", err)
			}
		}()
	}
	if err := serveDebug(*debugAddr, logger); err != nil {
		return err
	}
	// Elastic drain: the first SIGTERM lets the current tile batch
	// finish, hands remaining leases back for immediate re-issue and
	// exits 0; a second SIGTERM cancels outright (SIGINT always
	// cancels, via ctx).
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	term := make(chan os.Signal, 2)
	signal.Notify(term, syscall.SIGTERM)
	defer signal.Stop(term)
	go func() {
		select {
		case <-term:
		case <-wctx.Done():
			return
		}
		logger.Info("SIGTERM: draining — finishing the current batch (SIGTERM again to cancel)")
		w.Drain(wctx)
		select {
		case <-term:
			cancel()
		case <-wctx.Done():
		}
	}()
	fmt.Fprintf(stdout, "worker polling %s\n", *coord)
	if err := w.Run(wctx); err != nil && err != context.Canceled {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------
// submit

func runSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	in := fs.String("in", "", "input dataset path (required; '-' for stdin)")
	informat := fs.String("informat", "auto", datafile.FormatsHelp)
	phenPath := fs.String("phen", "", "phenotype file for VCF input (one 0/1 per sample)")
	name := fs.String("name", "", "human-readable job label")
	tiles := fs.Int("tiles", 16, "lease units the search space is cut into")
	backend := fs.String("backend", "", "execution backend: cpu, baseline, hetero or gpusim:<ID>")
	order := fs.Int("order", 0, "interaction order (0 = default 3)")
	topK := fs.Int("topk", 5, "number of candidates to report")
	objective := fs.String("objective", "", "objective: k2, mi or gini (default: the backend's native)")
	approach := fs.String("approach", "", "pin pipeline V1..V4, V3F or V4F (default: the backend's best)")
	workers := fs.Int("workers", 0, "per-worker host parallelism (0 = all cores)")
	auto := fs.Bool("auto", false, "model-driven autotuning: every worker plans the tile for its own host; the merged Report records the plan")
	energyBudget := fs.Float64("energy-budget", 0, "cap the modeled power draw at this many watts (implies -auto)")
	maxWorkers := fs.Int("max-workers", 0, "cap how many distinct workers may hold live leases on this job at once (0 = unlimited)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget from submission; the coordinator fails the job past it (0 = none)")
	screenSurvivors := fs.Int("screen-survivors", 0, "two-stage screening: a sharded pairwise pre-scan keeps the S best SNPs and stage-2 triple tiles search only among them (0 = no screen)")
	screenSeeds := fs.Int("screen-seeds", 0, "with -screen-survivors: also extend the top-P screened pairs with every third SNP (0 = engine default)")
	perm := fs.String("perm", "", "submit a permutation test instead of a search: candidate combinations as 'i,j,k[;i,j...]' (SNP indices); tiles shard the permutation range")
	perms := fs.Int("perms", 0, "with -perm: number of phenotype relabelings (0 = default 1000)")
	permSeed := fs.Int64("perm-seed", 0, "with -perm: RNG seed behind the permutation stream")
	wait := fs.Bool("wait", false, "block until the job finishes and print its Report JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxWorkers < 0 || *deadline < 0 {
		return fmt.Errorf("-max-workers and -deadline must be ≥ 0")
	}
	if *coord == "" || *in == "" {
		fs.Usage()
		return fmt.Errorf("missing required -coordinator / -in")
	}
	sess, err := datafile.ReadSession(*in, *informat, *phenPath)
	if err != nil {
		return err
	}
	defer sess.Close()
	spec := trigene.SearchSpec{
		Order:             *order,
		TopK:              *topK,
		Objective:         *objective,
		Backend:           *backend,
		Approach:          *approach,
		Workers:           *workers,
		AutoTune:          *auto || *energyBudget > 0,
		EnergyBudgetWatts: *energyBudget,
		MaxWorkers:        *maxWorkers,
		DeadlineMillis:    deadline.Milliseconds(),
	}
	if *screenSurvivors != 0 || *screenSeeds != 0 {
		// Validate client-side for a friendly error (the coordinator
		// re-validates at the door): negative budgets and survivor sets
		// larger than the dataset fail before any bytes are uploaded.
		sc := trigene.ScreenSpec{MaxSurvivors: *screenSurvivors, SeedPairs: *screenSeeds}
		if err := sc.Validate(sess.SNPs()); err != nil {
			return err
		}
		spec.Screen = &sc
	}
	if *perm != "" {
		// A permutation job re-scores fixed candidates; the search-shaping
		// flags do not combine with it (the coordinator re-rejects at the
		// door, this just fails before any bytes are uploaded).
		if spec.Screen != nil || spec.AutoTune || *order != 0 || *approach != "" ||
			(*backend != "" && *backend != "cpu") {
			return fmt.Errorf("-perm does not combine with -screen-survivors/-auto/-order/-approach or a non-cpu -backend")
		}
		snps, err := parsePermCandidates(*perm)
		if err != nil {
			return err
		}
		ps := trigene.PermSpec{SNPs: snps, Permutations: *perms, Seed: *permSeed}
		if err := ps.Validate(sess.SNPs()); err != nil {
			return err
		}
		spec.Perm = &ps
		spec.Order, spec.TopK = 0, 0
		if *tiles > ps.PermutationCount() {
			*tiles = ps.PermutationCount()
		}
	}
	cl := cluster.NewClient(*coord)
	id, err := cl.SubmitSession(ctx, sess, spec, *tiles, *name)
	if err != nil {
		return err
	}
	switch {
	case spec.Perm != nil:
		fmt.Fprintf(stdout, "submitted %s (%d candidates, %d permutations over %d tiles)\n",
			id, len(spec.Perm.SNPs), spec.Perm.PermutationCount(), *tiles)
	case spec.Screen != nil:
		fmt.Fprintf(stdout, "submitted %s (%d screen tiles + %d search tiles)\n", id, *tiles, *tiles)
	default:
		fmt.Fprintf(stdout, "submitted %s (%d tiles)\n", id, *tiles)
	}
	if !*wait {
		return nil
	}
	rep, err := cl.Wait(ctx, id)
	if err != nil {
		return err
	}
	return writeJSON(stdout, rep)
}

// parsePermCandidates parses the -perm flag value: candidate
// combinations separated by ';', SNP indices within one separated by
// ',' — e.g. "3,9,15;0,1".
func parsePermCandidates(s string) ([][]int, error) {
	var out [][]int
	for _, combo := range strings.Split(s, ";") {
		combo = strings.TrimSpace(combo)
		if combo == "" {
			continue
		}
		var snps []int
		for _, tok := range strings.Split(combo, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("bad -perm candidate %q: %v", combo, err)
			}
			snps = append(snps, n)
		}
		out = append(out, snps)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-perm names no candidate combinations")
	}
	return out, nil
}

// ---------------------------------------------------------------------
// pack

func runPack(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened pack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input dataset path (required; '-' for stdin)")
	informat := fs.String("informat", "auto", datafile.FormatsHelp)
	phenPath := fs.String("phen", "", "phenotype file for VCF input (one 0/1 per sample)")
	out := fs.String("out", "", "output .tpack path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("missing required -in / -out")
	}
	sess, err := datafile.ReadSession(*in, *informat, *phenPath)
	if err != nil {
		return err
	}
	defer sess.Close()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	err = sess.WritePack(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "packed %d SNPs x %d samples into %s (hash %.12s…)\n",
		sess.SNPs(), sess.Samples(), *out, sess.DatasetHash())
	return nil
}

// ---------------------------------------------------------------------
// status / result / cancel

func runStatus(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	job := fs.String("job", "", "job ID (default: list the whole queue)")
	workers := fs.Bool("workers", false, "list the per-worker capability registry instead of jobs")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		fs.Usage()
		return fmt.Errorf("missing required -coordinator")
	}
	cl := cluster.NewClient(*coord)
	if *workers {
		ws, err := cl.Workers(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(stdout, cluster.WorkerList{Workers: ws})
		}
		if len(ws) == 0 {
			fmt.Fprintln(stdout, "no workers")
			return nil
		}
		for _, w := range ws {
			rate := "-"
			if w.TilesPerSec > 0 {
				rate = fmt.Sprintf("%.2f tiles/s", w.TilesPerSec)
			}
			// Heartbeat age tells an operator at a glance which workers
			// are live, which are presumed dead, and which are leaving.
			health := fmt.Sprintf("seen %s ago", (time.Duration(w.AgeMs) * time.Millisecond).Round(time.Millisecond))
			if w.Stale {
				health += " STALE"
			}
			if w.Draining {
				health += " draining"
			}
			fmt.Fprintf(stdout, "%-24s cap %-6.4g %-14s %d/%d tiles done  %s\n",
				w.ID, w.Capacity, rate, w.Completed, w.Granted, health)
		}
		return nil
	}
	if *job != "" {
		st, err := cl.Status(ctx, *job)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(stdout, st)
		}
		printStatus(stdout, *st)
		return nil
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSON(stdout, cluster.JobList{Jobs: jobs})
	}
	if len(jobs) == 0 {
		fmt.Fprintln(stdout, "no jobs")
		return nil
	}
	// The queue-depth header mirrors the coordinator's
	// trigene_coord_queue_tiles gauge: unfinished tiles across running
	// jobs.
	running, pending := 0, 0
	for _, st := range jobs {
		if st.State == cluster.StateRunning {
			running++
			pending += st.Tiles - st.Done
		}
	}
	fmt.Fprintf(stdout, "queue: %d running, %d tiles pending\n", running, pending)
	for _, st := range jobs {
		printStatus(stdout, st)
	}
	return nil
}

func printStatus(w io.Writer, st cluster.JobStatus) {
	label := st.ID
	if st.Name != "" {
		label += " (" + st.Name + ")"
	}
	extra := ""
	switch {
	case st.State == cluster.StateRunning:
		age := time.Since(time.UnixMilli(st.SubmittedUnixMs)).Round(time.Second)
		extra = fmt.Sprintf(", %d leased, age %s", st.Leased, age)
	case st.Error != "":
		extra = ": " + st.Error
	case st.DurationMs > 0:
		extra = fmt.Sprintf(" in %.0f ms", st.DurationMs)
	}
	fmt.Fprintf(w, "%-24s %-9s %d/%d tiles%s\n", label, st.State, st.Done, st.Tiles, extra)
}

func runResult(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened result", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	job := fs.String("job", "", "job ID (required)")
	wait := fs.Bool("wait", false, "block until the job finishes instead of failing while it runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" || *job == "" {
		fs.Usage()
		return fmt.Errorf("missing required -coordinator / -job")
	}
	cl := cluster.NewClient(*coord)
	var rep *trigene.Report
	var err error
	if *wait {
		rep, err = cl.Wait(ctx, *job)
	} else {
		rep, err = cl.Result(ctx, *job)
	}
	if err != nil {
		return err
	}
	return writeJSON(stdout, rep)
}

func runCancel(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trigened cancel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	job := fs.String("job", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" || *job == "" {
		fs.Usage()
		return fmt.Errorf("missing required -coordinator / -job")
	}
	if err := cluster.NewClient(*coord).Cancel(ctx, *job); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cancelled %s\n", *job)
	return nil
}

// ---------------------------------------------------------------------
// shared helpers

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
