package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trigene"
)

// writeDataset materializes a small planted dataset in both formats.
func writeDataset(t *testing.T, binary bool) string {
	t.Helper()
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 16, Samples: 400, Seed: 60, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{1, 7, 12},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	name := "data.tg"
	if binary {
		name = "data.tgb"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if binary {
		err = trigene.WriteBinary(f, mx)
	} else {
		err = trigene.WriteText(f, mx)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextDataset(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-topk", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dataset: 16 SNPs x 400 samples") {
		t.Errorf("missing dataset line:\n%s", s)
	}
	if !strings.Contains(s, "(1,7,12)") {
		t.Errorf("planted triple not in output:\n%s", s)
	}
}

func TestRunBinaryAutodetect(t *testing.T) {
	path := writeDataset(t, true)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-approach", "V2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "approach V2") {
		t.Errorf("approach line missing:\n%s", out.String())
	}
}

func TestRunGPUSimulated(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-gpu", "GN1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "simulated GN1") || !strings.Contains(s, " 1. (1,7,12)") {
		t.Errorf("GPU output wrong:\n%s", s)
	}
}

func TestRunPairsMode(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-pairs", "-topk", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2-way:") {
		t.Errorf("pairs output wrong:\n%s", out.String())
	}
}

func TestRunObjectives(t *testing.T) {
	path := writeDataset(t, false)
	for _, obj := range []string{"k2", "mi", "gini"} {
		var out, errBuf bytes.Buffer
		if err := run([]string{"-in", path, "-objective", obj, "-topk", "1"}, &out, &errBuf); err != nil {
			t.Errorf("objective %s: %v", obj, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDataset(t, false)
	cases := [][]string{
		{},                                   // missing -in
		{"-in", "/nonexistent/file"},         // unreadable
		{"-in", path, "-approach", "V9"},     // bad approach
		{"-in", path, "-objective", "bogus"}, // bad objective
		{"-in", path, "-gpu", "GX9"},         // unknown device
		{"-badflag"},                         // flag error
	}
	for i, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
	// A file that is neither format.
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not a dataset at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", junk}, &out, &errBuf); err == nil {
		t.Error("junk input accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-json", "-topk", "2", "-permute", "50"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Mode         string `json:"mode"`
		SNPs         int    `json:"snps"`
		Combinations int64  `json:"combinations"`
		Candidates   []struct {
			SNPs  []int   `json:"snps"`
			Score float64 `json:"score"`
		} `json:"candidates"`
		PValue *float64 `json:"pValue"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if summary.SNPs != 16 || len(summary.Candidates) != 2 {
		t.Errorf("summary wrong: %+v", summary)
	}
	if summary.Candidates[0].SNPs[0] != 1 || summary.Candidates[0].SNPs[1] != 7 || summary.Candidates[0].SNPs[2] != 12 {
		t.Errorf("best candidate %v, want planted (1,7,12)", summary.Candidates[0].SNPs)
	}
	if summary.PValue == nil || *summary.PValue > 0.1 {
		t.Errorf("pValue missing or large: %v", summary.PValue)
	}
}

// TestRunJSONEmbedsStableReport: `-json` carries the full Report in
// trigene's stable wire format — the same encoding `trigened result`
// prints — and its candidates agree with the summary's.
func TestRunJSONEmbedsStableReport(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-json", "-topk", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Candidates []trigene.SearchCandidate `json:"candidates"`
		Report     *trigene.Report           `json:"report"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	rep := summary.Report
	if rep == nil {
		t.Fatal("no embedded report")
	}
	if rep.Backend != "cpu" || rep.Order != 3 || rep.Objective != "k2" || rep.Duration <= 0 {
		t.Errorf("embedded report metadata: %+v", rep)
	}
	if len(rep.TopK) != 3 || len(summary.Candidates) != 3 {
		t.Fatalf("candidate depth: report %d, summary %d", len(rep.TopK), len(summary.Candidates))
	}
	for i := range rep.TopK {
		if rep.TopK[i].Score != summary.Candidates[i].Score {
			t.Errorf("top-%d: report %.12f != summary %.12f", i+1, rep.TopK[i].Score, summary.Candidates[i].Score)
		}
	}
}

// TestRunRAWInput: the PLINK .raw loader is reachable explicitly and
// by auto-detection.
func TestRunRAWInput(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "tiny.raw")
	content := "FID IID PAT MAT SEX PHENOTYPE rs1_A rs2_C rs3_G\n" +
		"F S1 0 0 1 1 0 0 0\nF S2 0 0 1 2 1 1 2\nF S3 0 0 1 1 2 2 1\nF S4 0 0 1 2 0 1 0\n"
	if err := os.WriteFile(raw, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-in", raw, "-informat", "raw", "-topk", "1"},
		{"-in", raw, "-topk", "1"}, // auto-detected by the FID header
	} {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), "dataset: 3 SNPs x 4 samples") {
			t.Errorf("%v wrong:\n%s", args, out.String())
		}
	}
	// Malformed .raw input fails loudly through the CLI.
	bad := filepath.Join(dir, "bad.raw")
	if err := os.WriteFile(bad, []byte("FID IID PAT MAT SEX PHENOTYPE rs1_A\nF S1 0 0 1 1 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "non-biallelic") {
		t.Errorf("bad .raw error = %v", err)
	}
}

func TestRunPermuteTextMode(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-permute", "30"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "permutation test (30 relabelings)") {
		t.Errorf("permutation line missing:\n%s", out.String())
	}
}

func TestRunPairsJSON(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-pairs", "-json", "-permute", "20"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Mode       string `json:"mode"`
		Candidates []struct {
			SNPs []int `json:"snps"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Mode != "2-way" || len(summary.Candidates) == 0 || len(summary.Candidates[0].SNPs) != 2 {
		t.Errorf("pairs JSON wrong: %+v", summary)
	}
}

func TestRunOrderFour(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-order", "4", "-topk", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4-way:") {
		t.Errorf("4-way output wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-in", path, "-order", "4", "-json"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Mode       string `json:"mode"`
		Candidates []struct {
			SNPs []int `json:"snps"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Mode != "4-way" || len(summary.Candidates[0].SNPs) != 4 {
		t.Errorf("4-way JSON wrong: %+v", summary)
	}
	if err := run([]string{"-in", path, "-order", "99"}, &out, &errBuf); err == nil {
		t.Error("order 99 accepted")
	}
}

func TestRunPEDInput(t *testing.T) {
	dir := t.TempDir()
	ped := filepath.Join(dir, "tiny.ped")
	content := "F S1 0 0 1 1 A A C C G G\nF S2 0 0 1 2 A G C T G T\nF S3 0 0 1 1 G G T T T T\nF S4 0 0 1 2 A A C C G G\n"
	if err := os.WriteFile(ped, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", ped, "-informat", "ped", "-topk", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset: 3 SNPs x 4 samples") {
		t.Errorf("PED run wrong:\n%s", out.String())
	}
}

func TestRunVCFInput(t *testing.T) {
	dir := t.TempDir()
	vcf := filepath.Join(dir, "tiny.vcf")
	content := "##fileformat=VCFv4.2\n" +
		"#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\tS3\tS4\n" +
		"1\t10\trs1\tA\tG\t.\tPASS\t.\tGT\t0/0\t0/1\t1/1\t0/0\n" +
		"1\t20\trs2\tC\tT\t.\tPASS\t.\tGT\t0/1\t1/1\t0/0\t0/1\n" +
		"1\t30\trs3\tG\tT\t.\tPASS\t.\tGT\t1/1\t0/0\t0/1\t1/1\n"
	if err := os.WriteFile(vcf, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	phen := filepath.Join(dir, "phen.txt")
	if err := os.WriteFile(phen, []byte("0 1 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	// Auto-detection path (leading ##).
	if err := run([]string{"-in", vcf, "-phen", phen}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset: 3 SNPs x 4 samples") {
		t.Errorf("VCF run wrong:\n%s", out.String())
	}
	// Missing -phen is an error.
	if err := run([]string{"-in", vcf, "-informat", "vcf"}, &out, &errBuf); err == nil {
		t.Error("VCF without -phen accepted")
	}
	// Bad phenotype file.
	badPhen := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badPhen, []byte("0 1 2 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", vcf, "-phen", badPhen}, &out, &errBuf); err == nil {
		t.Error("bad phenotype file accepted")
	}
	// Unknown format name.
	if err := run([]string{"-in", vcf, "-informat", "bogus"}, &out, &errBuf); err == nil {
		t.Error("bogus informat accepted")
	}
}

// TestRunAutoTune: -auto prints the chosen plan in text mode, and the
// JSON summary carries the same trace (top-level and inside the
// embedded stable Report).
func TestRunAutoTune(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-auto", "-topk", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "plan: backend=cpu") {
		t.Errorf("plan line missing:\n%s", s)
	}
	if !strings.Contains(s, "grain=") || !strings.Contains(s, "predicted") {
		t.Errorf("plan details missing:\n%s", s)
	}
	if !strings.Contains(s, "(1,7,12)") {
		t.Errorf("planted triple not in autotuned output:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"-in", path, "-auto", "-json"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Plan   *trigene.PlanInfo `json:"plan"`
		Report *trigene.Report   `json:"report"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatalf("decoding JSON output: %v", err)
	}
	if summary.Plan == nil || summary.Plan.Backend != "cpu" || summary.Plan.Grain <= 0 {
		t.Errorf("JSON plan: %+v", summary.Plan)
	}
	if summary.Report == nil || summary.Report.Plan == nil {
		t.Error("embedded Report lost the plan")
	}
}

// TestRunEnergyBudget: -energy-budget implies autotuning and the text
// output names the operating point; nonsense budgets fail.
func TestRunEnergyBudget(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-energy-budget", "50"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "energy budget 50 W") || !strings.Contains(s, "GHz CPU") {
		t.Errorf("energy plan line missing:\n%s", s)
	}
	if err := run([]string{"-in", path, "-energy-budget", "-3"}, &out, &errBuf); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestRunScreened drives the two-stage screen flags end to end: the
// screened run still surfaces the planted triple, prints the audit
// line, embeds ScreenInfo in -json output, and rejects bad budgets
// before searching.
func TestRunScreened(t *testing.T) {
	path := writeDataset(t, false)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-screen-survivors", "8", "-topk", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "screen: ") || !strings.Contains(s, "survivors") {
		t.Errorf("missing screen audit line:\n%s", s)
	}
	if !strings.Contains(s, "(1,7,12)") {
		t.Errorf("planted triple pruned by screen:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"-in", path, "-screen-survivors", "8", "-json"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Screen *trigene.ScreenInfo `json:"screen"`
		Report struct {
			Screen *trigene.ScreenInfo `json:"screen"`
		} `json:"report"`
	}
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Screen == nil || summary.Report.Screen == nil {
		t.Fatalf("screen info missing from -json output:\n%s", out.String())
	}
	if summary.Screen.Survivors != 8 {
		t.Errorf("screen survivors %d, want 8", summary.Screen.Survivors)
	}

	for _, args := range [][]string{
		{"-in", path, "-screen-survivors", "-3"},
		{"-in", path, "-screen-survivors", "99"}, // > M=16
		{"-in", path, "-screen-budget", "-1"},
		{"-in", path, "-screen-seeds", "4"}, // seeds without a survivor budget
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v accepted", args[1:])
		}
	}
}
