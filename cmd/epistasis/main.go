// epistasis runs an exhaustive epistasis search on a dataset file
// (trigene text or binary format, packed .tpack, PLINK .ped, PLINK
// binary .bed with its .bim/.fam sidecars, or VCF; magic bytes are
// auto-detected) through the unified Session/Backend API.
//
// Usage:
//
//	epistasis -in data.tg                        # defaults: CPU V4, K2, all cores
//	epistasis -in data.tgb -approach V2 -topk 10 -objective mi
//	epistasis -in data.tg -gpu GN1               # run on a simulated GPU instead
//	epistasis -in data.tg -backend baseline      # MPI3SNP-style comparator (MI)
//	epistasis -in data.tg -backend hetero        # collaborative CPU+GPU split
//	epistasis -in data.tg -shard 0/4             # evaluate one shard of the space
//	epistasis -in data.tg -auto                  # model-driven autotuning (prints the plan)
//	epistasis -in data.tg -energy-budget 95      # autotune under a power cap
//	epistasis -in data.tg -screen-survivors 64   # two-stage: pair screen, then triples on survivors
//	epistasis -in data.tg -screen-budget 2.5     # planner-sized screen under a 2.5 s budget
//	epistasis -in data.tg -permute 10000         # permutation-test the best candidate (bit-plane kernel)
//	epistasis -in data.tg -permute 10000 -perm-cluster http://c:9321  # fan the test out over the cluster
//	epistasis -in data.tg -pack data.tpack       # pre-encode offline; later runs mmap it
//	epistasis -in data.tpack                     # search a packed dataset (starts in ms)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"trigene"
	"trigene/internal/cluster"
	"trigene/internal/datafile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("epistasis: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the testable tool body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("epistasis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input dataset path (required; '-' for stdin)")
	informat := fs.String("informat", "auto", datafile.FormatsHelp)
	phenPath := fs.String("phen", "", "phenotype file for VCF input (one 0/1 per sample, whitespace separated)")
	backend := fs.String("backend", "cpu", "execution backend: cpu, baseline or hetero")
	gpuID := fs.String("gpu", "", "simulate on a Table II GPU (e.g. GN1); overrides -backend")
	approach := fs.String("approach", "", "pipeline V1..V4, V3F, V4F (or naive/split/blocked/vector/fused; on -gpu: naive/split/transposed/tiled/fused); default: the backend's best")
	workers := fs.Int("workers", 0, "worker count (0 = all cores)")
	topK := fs.Int("topk", 5, "number of candidates to report")
	objective := fs.String("objective", "", "objective: k2, mi or gini (default: the backend's native objective)")
	pairs := fs.Bool("pairs", false, "run a 2-way (pairwise) search instead of 3-way")
	order := fs.Int("order", 0, "interaction order 4..7 for the generic k-way search (0 = specialized 3-way)")
	shard := fs.String("shard", "", "evaluate shard \"i/n\" of the combination space (e.g. 0/4)")
	auto := fs.Bool("auto", false, "model-driven autotuning: the planner picks backend/approach/grain/split from the paper's models and the chosen plan is printed")
	energyBudget := fs.Float64("energy-budget", 0, "cap the modeled power draw at this many watts (implies -auto; the plan records the DVFS operating point)")
	permute := fs.Int("permute", 0, "permutation count for a significance test of the best candidate (0 = off)")
	permCluster := fs.String("perm-cluster", "", "with -permute: fan the permutation test out over the cluster at this coordinator URL (the search itself stays local); merged p-values are bit-exact with the local run")
	permBatch := fs.Int("perm-batch", 0, "with -permute: permuted phenotype planes counted per kernel pass (0 = L1-sized)")
	screenSurvivors := fs.Int("screen-survivors", 0, "two-stage screening: keep the S best SNPs from a pairwise pre-scan and search triples only among them (0 = no screen)")
	screenBudget := fs.Float64("screen-budget", 0, "two-stage screening under a time budget: the planner sizes the survivor set to fit this many seconds (0 = off; combinable with -screen-survivors as a cap)")
	screenSeeds := fs.Int("screen-seeds", 0, "also extend the top-P screened pairs with every third SNP, guarding against survivors pruned by a marginal-free interaction (0 = default when screening)")
	packOut := fs.String("pack", "", "pre-encode the dataset into this .tpack file and exit (no search)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backendSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "backend" || f.Name == "gpu" {
			backendSet = true
		}
	})
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing required -in")
	}
	sess, err := datafile.ReadSession(*in, *informat, *phenPath)
	if err != nil {
		return err
	}
	defer sess.Close()
	controls, cases := sess.ClassCounts()
	if *packOut != "" {
		return writePack(sess, *packOut, stderr)
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "dataset: %d SNPs x %d samples (%d controls / %d cases)\n",
			sess.SNPs(), sess.Samples(), controls, cases)
	}

	onGPU := *gpuID != ""
	var be trigene.Backend
	switch {
	case onGPU:
		dev, err := trigene.GPUByID(*gpuID)
		if err != nil {
			return err
		}
		be = trigene.GPUSim(dev)
	case *backend == "cpu":
		be = trigene.CPU()
	case *backend == "baseline":
		be = trigene.Baseline()
	case *backend == "hetero":
		be = trigene.Hetero()
	default:
		return fmt.Errorf("unknown backend %q (want cpu, baseline or hetero)", *backend)
	}
	searchOrder := 3
	switch {
	case *pairs && *order != 0:
		return fmt.Errorf("-pairs and -order are mutually exclusive")
	case *pairs:
		searchOrder = 2
	case *order != 0:
		searchOrder = *order
	}

	if *energyBudget < 0 {
		return fmt.Errorf("energy budget must be positive watts, got %g", *energyBudget)
	}
	opts := []trigene.Option{trigene.WithOrder(searchOrder), trigene.WithTopK(*topK)}
	autotuned := *auto || *energyBudget > 0
	if backendSet || !autotuned {
		// Under -auto an unset backend is the planner's to choose.
		opts = append(opts, trigene.WithBackend(be))
	}
	if *energyBudget > 0 {
		opts = append(opts, trigene.WithEnergyBudget(*energyBudget))
	} else if *auto {
		opts = append(opts, trigene.WithAutoTune())
	}
	if *workers > 0 {
		opts = append(opts, trigene.WithWorkers(*workers))
	}
	if *objective != "" {
		opts = append(opts, trigene.WithObjective(*objective))
	}
	if *approach != "" {
		var ap trigene.Approach
		if onGPU {
			k, err := trigene.ParseGPUKernel(*approach)
			if err != nil {
				return err
			}
			ap = trigene.Approach(int(k))
		} else if ap, err = trigene.ParseApproach(*approach); err != nil {
			return err
		}
		opts = append(opts, trigene.WithApproach(ap))
	}
	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			return err
		}
		opts = append(opts, trigene.WithShard(idx, cnt))
	}
	if *screenSurvivors != 0 || *screenBudget != 0 || *screenSeeds != 0 {
		sc := trigene.ScreenSpec{
			MaxSurvivors:  *screenSurvivors,
			BudgetSeconds: *screenBudget,
			SeedPairs:     *screenSeeds,
		}
		if err := sc.Validate(sess.SNPs()); err != nil {
			return err
		}
		opts = append(opts, trigene.WithScreen(sc))
	}

	ctx := context.Background()
	rep, err := sess.Search(ctx, opts...)
	if err != nil {
		return err
	}

	var pValue *float64
	if *permute > 0 {
		permOpts := []trigene.Option{
			trigene.WithPermutations(*permute),
			trigene.WithObjective(rep.Objective),
		}
		if *workers > 0 {
			permOpts = append(permOpts, trigene.WithWorkers(*workers))
		}
		if *permBatch > 0 {
			permOpts = append(permOpts, trigene.WithPermBatch(*permBatch))
		}
		if *permCluster != "" {
			permOpts = append(permOpts, trigene.WithCluster(cluster.NewClient(*permCluster)))
		}
		sig, err := sess.PermutationTest(ctx, rep.Best.SNPs, permOpts...)
		if err != nil {
			return err
		}
		pValue = &sig.PValue
	}

	if *jsonOut {
		return writeJSON(stdout, summarize(sess, rep, pValue))
	}
	printPlan(stdout, rep)
	printScreen(stdout, rep)
	printReport(stdout, rep)
	printPValue(stdout, pValue, *permute)
	return nil
}

// printScreen renders the two-stage screening audit trail.
func printScreen(w io.Writer, rep *trigene.Report) {
	s := rep.Screen
	if s == nil {
		return
	}
	if s.Declined {
		fmt.Fprintf(w, "screen: declined (%s)\n", s.Reason)
		return
	}
	fmt.Fprintf(w, "screen: %d pairs scanned -> %d survivors (threshold %.4f, %d seed pairs); stage 1 %v, stage 2 %v\n",
		s.PairsScanned, s.Survivors, s.Threshold, s.SeedPairs,
		time.Duration(s.Stage1Ns).Round(time.Millisecond),
		time.Duration(s.Stage2Ns).Round(time.Millisecond))
}

// printPlan renders the autotuner's decision trace.
func printPlan(w io.Writer, rep *trigene.Report) {
	p := rep.Plan
	if p == nil {
		return
	}
	fmt.Fprintf(w, "plan: backend=%s approach=%s workers=%d grain=%d", p.Backend, p.Approach, p.Workers, p.Grain)
	if p.Backend == "hetero" {
		fmt.Fprintf(w, " cpu-split=%.2f gpu-grains=%d", p.CPUFraction, p.GPUGrains)
	}
	realizedTiles := 0.0
	if secs := rep.Duration.Seconds(); secs > 0 && p.Grain > 0 {
		realizedTiles = float64(rep.Combinations) / float64(p.Grain) / secs
	}
	fmt.Fprintf(w, "\nplan: predicted %.2f G elem/s (%.0f combos/s, %.1f tiles/s); realized %.2f G elem/s (%.1f tiles/s)\n",
		(p.PredictedCPUGElems + p.PredictedGPUGElems), p.PredictedCombosPerSec, p.PredictedTilesPerSec,
		rep.ElementsPerSec/1e9, realizedTiles)
	if p.EnergyBudgetWatts > 0 {
		fmt.Fprintf(w, "plan: energy budget %.0f W -> %.2f GHz CPU", p.EnergyBudgetWatts, p.TargetCPUGHz)
		if p.TargetGPUGHz > 0 {
			fmt.Fprintf(w, " / %.2f GHz GPU", p.TargetGPUGHz)
		}
		fmt.Fprintf(w, ", modeled draw %.0f W\n", p.PredictedWatts)
	}
	if p.Reason != "" {
		fmt.Fprintf(w, "plan: %s\n", p.Reason)
	}
}

// printReport renders the unified Report in the tool's text format.
func printReport(w io.Writer, rep *trigene.Report) {
	switch {
	case rep.GPU != nil && rep.Hetero == nil:
		dev := strings.TrimPrefix(rep.Backend, "gpusim:")
		fmt.Fprintf(w, "simulated %s (kernel %s): modeled %.3f ms, %.2f G elements/s\n",
			dev, rep.Approach, rep.GPU.ModelSeconds*1e3, rep.ElementsPerSec/1e9)
	case rep.Hetero != nil:
		fmt.Fprintf(w, "heterogeneous (CPU fraction %.2f): %d combinations in %v (%.2f G elements/s)\n",
			rep.Hetero.CPUFraction, rep.Combinations,
			rep.Duration.Round(time.Millisecond), rep.ElementsPerSec/1e9)
	case rep.Order == 3:
		fmt.Fprintf(w, "approach %s: %d combinations in %v (%.2f G elements/s)\n",
			rep.Approach, rep.Combinations, rep.Duration.Round(time.Millisecond),
			rep.ElementsPerSec/1e9)
	default:
		fmt.Fprintf(w, "%d-way: %d combinations in %v (%.2f G elements/s)\n",
			rep.Order, rep.Combinations, rep.Duration.Round(time.Millisecond),
			rep.ElementsPerSec/1e9)
	}
	if rep.Shard != nil {
		fmt.Fprintf(w, "shard %d/%d: %s [%d,%d)\n",
			rep.Shard.Index, rep.Shard.Count, rep.Shard.Space, rep.Shard.Lo, rep.Shard.Hi)
	}
	for i, c := range rep.TopK {
		fmt.Fprintf(w, "%2d. %s  %s = %.4f\n", i+1, snpsString(c.SNPs), rep.Objective, c.Score)
	}
}

// snpsString renders a candidate as "(i,j,k)" for any order.
func snpsString(snps []int) string {
	parts := make([]string, len(snps))
	for i, s := range snps {
		parts[i] = strconv.Itoa(s)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// parseShard parses "i/n".
func parseShard(s string) (index, count int, err error) {
	lo, hi, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q: want \"index/count\", e.g. 0/4", s)
	}
	if index, err = strconv.Atoi(lo); err != nil {
		return 0, 0, fmt.Errorf("shard index %q: %v", lo, err)
	}
	if count, err = strconv.Atoi(hi); err != nil {
		return 0, 0, fmt.Errorf("shard count %q: %v", hi, err)
	}
	return index, count, nil
}

// jsonSummary is the machine-readable output of a search run. The
// candidate encoding and the embedded "report" use trigene's stable
// wire format, so this output and `trigened result` carry identical
// Report JSON.
type jsonSummary struct {
	Mode         string                    `json:"mode"`
	Backend      string                    `json:"backend"`
	SNPs         int                       `json:"snps"`
	Samples      int                       `json:"samples"`
	Controls     int                       `json:"controls"`
	Cases        int                       `json:"cases"`
	Objective    string                    `json:"objective"`
	Combinations int64                     `json:"combinations"`
	GElemPerSec  float64                   `json:"gigaElementsPerSec"`
	Candidates   []trigene.SearchCandidate `json:"candidates"`
	PValue       *float64                  `json:"pValue,omitempty"`
	// Plan surfaces the autotuner's decision trace (also embedded in
	// Report) for -auto / -energy-budget runs.
	Plan *trigene.PlanInfo `json:"plan,omitempty"`
	// Screen surfaces the two-stage screening audit trail (also
	// embedded in Report) for -screen-* runs.
	Screen *trigene.ScreenInfo `json:"screen,omitempty"`
	Report *trigene.Report     `json:"report"`
}

func summarize(sess *trigene.Session, rep *trigene.Report, pValue *float64) jsonSummary {
	controls, cases := sess.ClassCounts()
	mode := fmt.Sprintf("%d-way", rep.Order)
	if rep.Order == 3 {
		mode += " " + rep.Approach
	}
	return jsonSummary{
		Mode:         mode,
		Backend:      rep.Backend,
		SNPs:         sess.SNPs(),
		Samples:      sess.Samples(),
		Controls:     controls,
		Cases:        cases,
		Objective:    rep.Objective,
		Combinations: rep.Combinations,
		GElemPerSec:  rep.ElementsPerSec / 1e9,
		Candidates:   rep.TopK,
		PValue:       pValue,
		Plan:         rep.Plan,
		Screen:       rep.Screen,
		Report:       rep,
	}
}

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printPValue(w io.Writer, p *float64, permutations int) {
	if p != nil {
		fmt.Fprintf(w, "permutation test (%d relabelings): p = %.4f\n", permutations, *p)
	}
}

// writePack pre-encodes the loaded dataset into a .tpack file, so a
// later epistasis/trigened run (or a cluster worker's pack cache)
// starts searching without re-parsing or re-binarizing.
func writePack(sess *trigene.Session, path string, stderr io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = sess.WritePack(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fi, statErr := os.Stat(path)
	size := int64(0)
	if statErr == nil {
		size = fi.Size()
	}
	fmt.Fprintf(stderr, "packed %d SNPs x %d samples into %s (%d bytes, hash %.12s…)\n",
		sess.SNPs(), sess.Samples(), path, size, sess.DatasetHash())
	return nil
}
