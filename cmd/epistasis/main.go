// epistasis runs an exhaustive third-order epistasis search on a
// dataset file (trigene text or binary format; the binary magic is
// auto-detected).
//
// Usage:
//
//	epistasis -in data.tg                        # defaults: V4, K2, all cores
//	epistasis -in data.tgb -approach V2 -topk 10 -objective mi
//	epistasis -in data.tg -gpu GN1               # run on the simulated GPU instead
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"trigene"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("epistasis: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the testable tool body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("epistasis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input dataset path (required; '-' for stdin)")
	informat := fs.String("informat", "auto", "input format: auto (trigene text/binary or VCF), ped, vcf")
	phenPath := fs.String("phen", "", "phenotype file for VCF input (one 0/1 per sample, whitespace separated)")
	approach := fs.String("approach", "V4", "CPU approach: V1, V2, V3 or V4")
	workers := fs.Int("workers", 0, "worker count (0 = all cores)")
	topK := fs.Int("topk", 5, "number of candidates to report")
	objective := fs.String("objective", "k2", "objective: k2, mi or gini")
	pairs := fs.Bool("pairs", false, "run a 2-way (pairwise) search instead of 3-way")
	order := fs.Int("order", 0, "interaction order 4..7 for the generic k-way search (0 = specialized 3-way)")
	gpuID := fs.String("gpu", "", "simulate on a Table II GPU (e.g. GN1) instead of the CPU engine")
	permute := fs.Int("permute", 0, "permutation count for a significance test of the best candidate (0 = off)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing required -in")
	}
	mx, err := readDataset(*in, *informat, *phenPath)
	if err != nil {
		return err
	}
	controls, cases := mx.ClassCounts()
	if !*jsonOut {
		fmt.Fprintf(stdout, "dataset: %d SNPs x %d samples (%d controls / %d cases)\n",
			mx.SNPs(), mx.Samples(), controls, cases)
	}

	obj, err := trigene.NewObjective(*objective, mx.Samples())
	if err != nil {
		return err
	}

	if *gpuID != "" {
		return runGPU(stdout, *gpuID, mx, obj)
	}

	if *order != 0 {
		return runKWay(stdout, mx, obj, *order, *workers, *topK, *jsonOut)
	}

	summary := jsonSummary{
		SNPs: mx.SNPs(), Samples: mx.Samples(),
		Controls: controls, Cases: cases, Objective: obj.Name(),
	}
	if *pairs {
		res, err := trigene.SearchPairs(mx, trigene.Options{
			Workers: *workers, Objective: obj, TopK: *topK,
		})
		if err != nil {
			return err
		}
		summary.Mode = "2-way"
		summary.Combinations = res.Stats.Combinations
		summary.GElemPerSec = res.Stats.ElementsPerSec / 1e9
		for _, c := range res.TopK {
			summary.Candidates = append(summary.Candidates, jsonCandidate{
				SNPs: []int{c.Pair.I, c.Pair.J}, Score: c.Score,
			})
		}
		if *permute > 0 {
			sig, err := trigene.PermutationTestPair(mx, res.Best.Pair,
				trigene.PermConfig{Permutations: *permute, Workers: *workers, Objective: obj})
			if err != nil {
				return err
			}
			summary.PValue = &sig.PValue
		}
		if *jsonOut {
			return writeJSON(stdout, summary)
		}
		fmt.Fprintf(stdout, "2-way: %d combinations in %v (%.2f G elements/s)\n",
			res.Stats.Combinations, res.Stats.Duration.Round(time.Millisecond),
			res.Stats.ElementsPerSec/1e9)
		for i, c := range res.TopK {
			fmt.Fprintf(stdout, "%2d. (%d,%d)  %s = %.4f\n", i+1, c.Pair.I, c.Pair.J, obj.Name(), c.Score)
		}
		printPValue(stdout, summary.PValue, *permute)
		return nil
	}

	ap, err := trigene.ParseApproach(*approach)
	if err != nil {
		return err
	}
	res, err := trigene.Search(mx, trigene.Options{
		Approach:  ap,
		Workers:   *workers,
		Objective: obj,
		TopK:      *topK,
	})
	if err != nil {
		return err
	}
	summary.Mode = "3-way " + ap.String()
	summary.Combinations = res.Stats.Combinations
	summary.GElemPerSec = res.Stats.ElementsPerSec / 1e9
	for _, c := range res.TopK {
		summary.Candidates = append(summary.Candidates, jsonCandidate{
			SNPs: []int{c.Triple.I, c.Triple.J, c.Triple.K}, Score: c.Score,
		})
	}
	if *permute > 0 {
		sig, err := trigene.PermutationTest(mx, res.Best.Triple,
			trigene.PermConfig{Permutations: *permute, Workers: *workers, Objective: obj})
		if err != nil {
			return err
		}
		summary.PValue = &sig.PValue
	}
	if *jsonOut {
		return writeJSON(stdout, summary)
	}
	fmt.Fprintf(stdout, "approach %v: %d combinations in %v (%.2f G elements/s)\n",
		ap, res.Stats.Combinations, res.Stats.Duration.Round(time.Millisecond),
		res.Stats.ElementsPerSec/1e9)
	for i, c := range res.TopK {
		fmt.Fprintf(stdout, "%2d. %v  %s = %.4f\n", i+1, c.Triple, obj.Name(), c.Score)
	}
	printPValue(stdout, summary.PValue, *permute)
	return nil
}

// jsonSummary is the machine-readable output of a search run.
type jsonSummary struct {
	Mode         string          `json:"mode"`
	SNPs         int             `json:"snps"`
	Samples      int             `json:"samples"`
	Controls     int             `json:"controls"`
	Cases        int             `json:"cases"`
	Objective    string          `json:"objective"`
	Combinations int64           `json:"combinations"`
	GElemPerSec  float64         `json:"gigaElementsPerSec"`
	Candidates   []jsonCandidate `json:"candidates"`
	PValue       *float64        `json:"pValue,omitempty"`
}

type jsonCandidate struct {
	SNPs  []int   `json:"snps"`
	Score float64 `json:"score"`
}

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printPValue(w io.Writer, p *float64, permutations int) {
	if p != nil {
		fmt.Fprintf(w, "permutation test (%d relabelings): p = %.4f\n", permutations, *p)
	}
}

func runGPU(stdout io.Writer, id string, mx *trigene.Matrix, obj trigene.Objective) error {
	dev, err := trigene.GPUByID(id)
	if err != nil {
		return err
	}
	res, err := trigene.SimulateGPU(dev, mx, trigene.GPUOptions{Objective: obj})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simulated %s (%s): modeled %.3f ms, %.2f G elements/s\n",
		dev.ID, dev.Name, res.Stats.ModelSeconds*1e3, res.Stats.ElementsPerSec/1e9)
	fmt.Fprintf(stdout, "best: (%d,%d,%d)  %s = %.4f\n",
		res.Best.I, res.Best.J, res.Best.K, obj.Name(), res.Best.Score)
	return nil
}

func readDataset(path, format, phenPath string) (*trigene.Matrix, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	switch format {
	case "ped":
		return trigene.ReadPED(br)
	case "vcf":
		return readVCFWithPhen(br, phenPath)
	case "auto":
		magic, err := br.Peek(4)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		switch {
		case bytes.Equal(magic, []byte("TGB1")):
			return trigene.ReadBinary(br)
		case magic[0] == '#' && magic[1] == '#', bytes.Equal(magic, []byte("#CHR")):
			return readVCFWithPhen(br, phenPath)
		default:
			return trigene.ReadText(br)
		}
	default:
		return nil, fmt.Errorf("unknown input format %q (want auto, ped or vcf)", format)
	}
}

// readVCFWithPhen pairs a VCF genotype stream with a phenotype file.
func readVCFWithPhen(r io.Reader, phenPath string) (*trigene.Matrix, error) {
	if phenPath == "" {
		return nil, fmt.Errorf("VCF input requires -phen (VCF carries no case-control status)")
	}
	raw, err := os.ReadFile(phenPath)
	if err != nil {
		return nil, err
	}
	var phen []uint8
	for _, tok := range strings.Fields(string(raw)) {
		switch tok {
		case "0":
			phen = append(phen, 0)
		case "1":
			phen = append(phen, 1)
		default:
			return nil, fmt.Errorf("phenotype file: invalid value %q (want 0 or 1)", tok)
		}
	}
	return trigene.ReadVCF(r, phen)
}

// runKWay handles the generic arbitrary-order search mode.
func runKWay(stdout io.Writer, mx *trigene.Matrix, obj trigene.Objective, order, workers, topK int, jsonOut bool) error {
	res, err := trigene.SearchK(mx, order, trigene.Options{
		Workers: workers, Objective: obj, TopK: topK,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		controls, cases := mx.ClassCounts()
		summary := jsonSummary{
			Mode: fmt.Sprintf("%d-way", order),
			SNPs: mx.SNPs(), Samples: mx.Samples(),
			Controls: controls, Cases: cases, Objective: obj.Name(),
			Combinations: res.Stats.Combinations,
			GElemPerSec:  res.Stats.ElementsPerSec / 1e9,
		}
		for _, c := range res.TopK {
			summary.Candidates = append(summary.Candidates, jsonCandidate{SNPs: c.SNPs, Score: c.Score})
		}
		return writeJSON(stdout, summary)
	}
	fmt.Fprintf(stdout, "%d-way: %d combinations in %v (%.2f G elements/s)\n",
		order, res.Stats.Combinations, res.Stats.Duration.Round(time.Millisecond),
		res.Stats.ElementsPerSec/1e9)
	for i, c := range res.TopK {
		fmt.Fprintf(stdout, "%2d. %v  %s = %.4f\n", i+1, c.SNPs, obj.Name(), c.Score)
	}
	return nil
}
