package trigene_test

import (
	"context"
	"strings"
	"testing"

	"trigene"
)

// Facade coverage for the extension APIs: 2-way search, permutation
// testing, heterogeneous execution, and the PLINK/VCF importers.

func TestPublicAPIPairWorkflow(t *testing.T) {
	var pen [9]float64
	for c := range pen {
		if c/3+c%3 >= 2 {
			pen[c] = 0.9
		} else {
			pen[c] = 0.1
		}
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 30, Samples: 1000, Seed: 70, MAFMin: 0.3, MAFMax: 0.5,
		PairInteraction: &trigene.PairInteraction{SNPs: [2]int{4, 19}, Penetrance: pen},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := sess.Search(ctx, trigene.WithOrder(2), trigene.WithTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, rep.Best.SNPs, 4, 19)
	sig, err := sess.PermutationTest(ctx, rep.Best.SNPs,
		trigene.WithPermutations(100), trigene.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sig.PValue > 0.02 {
		t.Errorf("planted pair p = %.4f, want tiny", sig.PValue)
	}
	if sig.Observed != rep.Best.Score {
		t.Errorf("observed %.6f != scan score %.6f", sig.Observed, rep.Best.Score)
	}
}

func TestPublicAPIHeterogeneous(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 20, Samples: 300, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := sess.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	het, err := sess.Search(ctx, trigene.WithBackend(trigene.Hetero()))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, het.Best.SNPs, want.Best.SNPs...)
	if het.Best.Score != want.Best.Score {
		t.Errorf("heterogeneous best %.9f != %.9f", het.Best.Score, want.Best.Score)
	}
	if het.Hetero == nil || het.Hetero.CPUFraction < 0 || het.Hetero.CPUFraction > 1 {
		t.Errorf("hetero split info: %+v", het.Hetero)
	}
	// An explicit device pair with a forced static split also merges
	// bit-exactly.
	ci3, err := trigene.CPUByID("CI3")
	if err != nil {
		t.Fatal(err)
	}
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	forced, err := sess.Search(ctx, trigene.WithBackend(trigene.HeteroOn(ci3, gn1, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, forced.Best.SNPs, want.Best.SNPs...)
}

func TestPublicAPIPermutationTest(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 15, Samples: 600, Seed: 72, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{2, 7, 11},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.PermutationTest(context.Background(), []int{2, 7, 11},
		trigene.WithPermutations(100), trigene.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.02 {
		t.Errorf("planted triple p = %.4f", res.PValue)
	}
}

func TestPublicAPIImporters(t *testing.T) {
	ped := "F S1 0 0 1 1 A A C C\nF S2 0 0 1 2 A G C T\nF S3 0 0 1 1 G G T T\n"
	mx, err := trigene.ReadPED(strings.NewReader(ped))
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 2 || mx.Samples() != 3 {
		t.Errorf("PED dims %dx%d", mx.SNPs(), mx.Samples())
	}

	vcf := "##fileformat=VCFv4.2\n" +
		"#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n" +
		"1\t10\trs1\tA\tG\t.\tPASS\t.\tGT\t0/1\t1/1\n"
	vmx, err := trigene.ReadVCF(strings.NewReader(vcf), []uint8{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vmx.SNPs() != 1 || vmx.Samples() != 2 || vmx.Geno(0, 1) != 2 {
		t.Error("VCF parse wrong")
	}
}
