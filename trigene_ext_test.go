package trigene_test

import (
	"strings"
	"testing"

	"trigene"
)

// Facade coverage for the extension APIs: 2-way search, permutation
// testing, heterogeneous execution, and the PLINK/VCF importers.

func TestPublicAPIPairWorkflow(t *testing.T) {
	var pen [9]float64
	for c := range pen {
		if c/3+c%3 >= 2 {
			pen[c] = 0.9
		} else {
			pen[c] = 0.1
		}
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 30, Samples: 1000, Seed: 70, MAFMin: 0.3, MAFMax: 0.5,
		PairInteraction: &trigene.PairInteraction{SNPs: [2]int{4, 19}, Penetrance: pen},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := trigene.SearchPairs(mx, trigene.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := trigene.Pair{I: 4, J: 19}
	if res.Best.Pair != want {
		t.Fatalf("best pair %+v, want %+v", res.Best.Pair, want)
	}
	sig, err := trigene.PermutationTestPair(mx, res.Best.Pair, trigene.PermConfig{Permutations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sig.PValue > 0.02 {
		t.Errorf("planted pair p = %.4f, want tiny", sig.PValue)
	}
	if sig.Observed != res.Best.Score {
		t.Errorf("observed %.6f != scan score %.6f", sig.Observed, res.Best.Score)
	}
}

func TestPublicAPIHeterogeneous(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 20, Samples: 300, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	want, err := trigene.Search(mx, trigene.Options{})
	if err != nil {
		t.Fatal(err)
	}
	het, err := trigene.SearchHeterogeneous(mx, trigene.HeteroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if het.Best != want.Best {
		t.Errorf("heterogeneous best %+v != %+v", het.Best, want.Best)
	}
	if het.CPUFraction <= 0 || het.CPUFraction >= 1 {
		t.Errorf("auto fraction %.3f", het.CPUFraction)
	}
}

func TestPublicAPIPermutationTest(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 15, Samples: 600, Seed: 72, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{2, 7, 11},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := trigene.PermutationTest(mx, trigene.Triple{I: 2, J: 7, K: 11},
		trigene.PermConfig{Permutations: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.02 {
		t.Errorf("planted triple p = %.4f", res.PValue)
	}
}

func TestPublicAPIImporters(t *testing.T) {
	ped := "F S1 0 0 1 1 A A C C\nF S2 0 0 1 2 A G C T\nF S3 0 0 1 1 G G T T\n"
	mx, err := trigene.ReadPED(strings.NewReader(ped))
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 2 || mx.Samples() != 3 {
		t.Errorf("PED dims %dx%d", mx.SNPs(), mx.Samples())
	}

	vcf := "##fileformat=VCFv4.2\n" +
		"#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n" +
		"1\t10\trs1\tA\tG\t.\tPASS\t.\tGT\t0/1\t1/1\n"
	vmx, err := trigene.ReadVCF(strings.NewReader(vcf), []uint8{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vmx.SNPs() != 1 || vmx.Samples() != 2 || vmx.Geno(0, 1) != 2 {
		t.Error("VCF parse wrong")
	}
}
